(** Coverage-feedback-directed schedule fuzzing.

    Keeps a bounded corpus of schedule traces that uncovered new coverage
    (fed back by the engine through {!Strategy.factory.feedback}) and
    derives each execution from a mutated corpus entry:

    - {b truncate}: keep a random-length prefix, explore randomly after it;
    - {b rewindow}: re-draw a bounded window of choices in place, keeping
      the suffix;
    - {b splice}: a prefix of one corpus entry continued by the suffix of
      another;
    - {b fault-tune} (opt-in, [mutate_faults]): keep the scheduling spine
      byte-identical and perturb only the recorded value draws — crash
      instants, delay latencies, drop/dup booleans — re-running a
      schedule under neighboring fault timings.

    The mutated prefix is replayed {e leniently} — as soon as a recorded
    choice no longer fits the execution (machine not enabled, bound
    exceeded, wrong choice kind), the strategy falls back to seeded random
    exploration for the rest of the run, so mutants always yield valid
    executions. A fraction of executions (and every execution while the
    corpus is empty) is pure seeded random, keeping exploration from
    collapsing onto the corpus.

    {b Fuzzing v2.} Each corpus entry records {e which} coverage families
    it was novel for ({!corpus_entry.tags}) and a mutation energy derived
    from them; with [energy] on, corpus selection is
    energy-proportional (an AFL-style power schedule) instead of uniform,
    so traces that discovered new canonical partial orders ({!Coverage}
    [Hb] family) or new fault points get proportionally more mutation
    attempts, and a new partial order alone admits a trace to the corpus.
    Both knobs default off, leaving the v1 draw sequence untouched.

    The factory is stateful (the corpus persists across iterations), hence
    not parallel-safe by default: the engine explores sequentially under
    it, and with the same seed the whole run is deterministic. Linking
    per-worker factories through an {!Exchange} hub makes the factory
    parallel-safe: each worker owns a private corpus and PRNG, pushes the
    (rare) coverage-novel traces it finds to the hub, and pulls unseen
    entries at execution boundaries — no shared lock on the per-execution
    path. Exchange-linked search is {e not} schedule-reproducible across
    worker timings (like any collaborative fuzzer); found witnesses still
    replay deterministically. *)

(** One corpus entry: the trace, the mutation energy it earned, and the
    typed novelty tags that admitted it (which coverage families it was
    the first to reach — empty when energy scheduling was off). *)
type corpus_entry = {
  trace : Trace.t;
  energy : int;
  tags : Coverage.family_kind list;
}

(** [energy_of_tags tags] = [1 + Σ weight(tag)] with [Hb] worth 8,
    [Fault] 4, every other family 1 — new partial orders are the finest
    signal, fault points the next. An untagged entry has energy 1. *)
val energy_of_tags : Coverage.family_kind list -> int

(** [entry_of_trace t] wraps a bare trace as an energy-1, untagged entry
    (the shape of every v1 corpus entry). *)
val entry_of_trace : Trace.t -> corpus_entry

(** [weighted_pick ~draw energies] selects an index with probability
    proportional to [max 1 energies.(i)]: [draw total] must return a
    point in [\[0, total)]. Exposed for distribution tests.
    @raise Invalid_argument on an empty array. *)
val weighted_pick : draw:(int -> int) -> int array -> int

(** The mutation operators, exposed for distribution tests (the factory
    draws them internally). [Fault_tune] is only drawn when the factory
    was created with [mutate_faults:true]. *)
type op = Truncate | Rewindow | Splice | Fault_tune

(** [mutate_for_test ~seed ~corpus op] applies one operator to a corpus
    of traces under a fresh seeded PRNG — a deterministic window into the
    factory's internal mutator, so tests can check the three schedule
    operators produce distinguishable mutant distributions.
    @raise Invalid_argument when [corpus] has no non-empty trace. *)
val mutate_for_test : seed:int64 -> corpus:Trace.t list -> op -> Trace.t

(** Cross-worker novelty hub: a bounded, append-only pool of schedules
    shared by the per-worker corpora of a parallel fuzz run. Also the
    corpus collection point for persistent campaigns ({!Campaign}): after
    a run, {!Exchange.snapshot} yields the corpus to save.

    Pushes are deduplicated by {!Coverage.fingerprint} — under parallel
    per-worker novelty views several workers publish the same trace —
    and nothing is dropped silently: {!Exchange.stats} counts both
    duplicate and over-cap rejections. *)
module Exchange : sig
  type t

  (** [create ()] — [cap] bounds the pool (default 256); once full the hub
      stops accepting (append-only storage keeps worker pull cursors
      valid) but counts every rejection. *)
  val create : ?cap:int -> unit -> t

  (** The pooled entries, in push order, energy/tags metadata included.
      Safe to call concurrently with a running exploration. *)
  val snapshot : t -> corpus_entry list

  (** Push accounting: [accepted] entries in the pool, [dropped_dup]
      pushes rejected as fingerprint duplicates, [dropped_cap] pushes
      rejected because the pool was full. Safe to call concurrently. *)
  type stats = { accepted : int; dropped_dup : int; dropped_cap : int }

  val stats : t -> stats

  (** [of_entries entries] pre-fills a fresh hub (empty traces are
      skipped, duplicates deduped) — the campaign-resume path, so every
      worker's corpus starts from the persisted one, energy included. *)
  val of_entries : ?cap:int -> corpus_entry list -> t

  (** [of_traces traces] = [of_entries (List.map entry_of_trace traces)]. *)
  val of_traces : ?cap:int -> Trace.t list -> t
end

val factory :
  seed:int64 ->
  ?corpus_cap:int ->
  ?random_bias:int ->
  ?initial:corpus_entry list ->
  ?exchange:Exchange.t ->
  ?energy:bool ->
  ?mutate_faults:bool ->
  unit ->
  Strategy.factory
(** [factory ~seed ()] — [corpus_cap] bounds the corpus (default 32;
    once full, a random entry is evicted); [random_bias] is the
    denominator of the pure-random fraction (default 4: one execution in
    four explores purely randomly); [initial] pre-seeds the corpus (a
    campaign resume passes the persisted corpus, energies included);
    [exchange] links this factory's corpus to other workers' through a
    shared novelty hub and marks the factory parallel-safe; [energy]
    (default off) turns on the energy-proportional power schedule and
    hb-novelty admission; [mutate_faults] (default off) adds the
    fault-tune operator to the mutation mix. With both knobs off the
    factory draws exactly the v1 sequence. *)
