(** Coverage-feedback-directed schedule fuzzing.

    Keeps a bounded corpus of schedule traces that uncovered new coverage
    (fed back by the engine through {!Strategy.factory.feedback}) and
    derives each execution from a mutated corpus entry:

    - {b truncate}: keep a random-length prefix, explore randomly after it;
    - {b re-randomize suffix}: keep most of the schedule, redo the tail;
    - {b splice}: a prefix of one corpus entry continued by the suffix of
      another.

    The mutated prefix is replayed {e leniently} — as soon as a recorded
    choice no longer fits the execution (machine not enabled, bound
    exceeded, wrong choice kind), the strategy falls back to seeded random
    exploration for the rest of the run, so mutants always yield valid
    executions. A fraction of executions (and every execution while the
    corpus is empty) is pure seeded random, keeping exploration from
    collapsing onto the corpus.

    The factory is stateful (the corpus persists across iterations), hence
    not parallel-safe: the engine explores sequentially under it. With the
    same seed the whole run is deterministic. *)

val factory : seed:int64 -> ?corpus_cap:int -> ?random_bias:int -> unit -> Strategy.factory
(** [factory ~seed ()] — [corpus_cap] bounds the corpus (default 32;
    once full, a random entry is evicted); [random_bias] is the
    denominator of the pure-random fraction (default 4: one execution in
    four explores purely randomly). *)
