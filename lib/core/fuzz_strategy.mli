(** Coverage-feedback-directed schedule fuzzing.

    Keeps a bounded corpus of schedule traces that uncovered new coverage
    (fed back by the engine through {!Strategy.factory.feedback}) and
    derives each execution from a mutated corpus entry:

    - {b truncate}: keep a random-length prefix, explore randomly after it;
    - {b re-randomize suffix}: keep most of the schedule, redo the tail;
    - {b splice}: a prefix of one corpus entry continued by the suffix of
      another.

    The mutated prefix is replayed {e leniently} — as soon as a recorded
    choice no longer fits the execution (machine not enabled, bound
    exceeded, wrong choice kind), the strategy falls back to seeded random
    exploration for the rest of the run, so mutants always yield valid
    executions. A fraction of executions (and every execution while the
    corpus is empty) is pure seeded random, keeping exploration from
    collapsing onto the corpus.

    The factory is stateful (the corpus persists across iterations), hence
    not parallel-safe by default: the engine explores sequentially under
    it, and with the same seed the whole run is deterministic. Linking
    per-worker factories through an {!Exchange} hub makes the factory
    parallel-safe: each worker owns a private corpus and PRNG, pushes the
    (rare) coverage-novel traces it finds to the hub, and pulls unseen
    entries at execution boundaries — no shared lock on the per-execution
    path. Exchange-linked search is {e not} schedule-reproducible across
    worker timings (like any collaborative fuzzer); found witnesses still
    replay deterministically. *)

(** Cross-worker novelty hub: a bounded, append-only pool of schedules
    shared by the per-worker corpora of a parallel fuzz run. Also the
    corpus collection point for persistent campaigns ({!Campaign}): after
    a run, {!Exchange.snapshot} yields the corpus to save. *)
module Exchange : sig
  type t

  (** [create ()] — [cap] bounds the pool (default 256); once full the hub
      stops accepting (append-only storage keeps worker pull cursors
      valid). *)
  val create : ?cap:int -> unit -> t

  (** The pooled traces, in push order. Safe to call concurrently with a
      running exploration. *)
  val snapshot : t -> Trace.t list

  (** [of_traces traces] pre-fills a fresh hub (empty traces are skipped) —
      the campaign-resume path, so every worker's corpus starts from the
      persisted one. *)
  val of_traces : ?cap:int -> Trace.t list -> t
end

val factory :
  seed:int64 ->
  ?corpus_cap:int ->
  ?random_bias:int ->
  ?initial:Trace.t list ->
  ?exchange:Exchange.t ->
  unit ->
  Strategy.factory
(** [factory ~seed ()] — [corpus_cap] bounds the corpus (default 32;
    once full, a random entry is evicted); [random_bias] is the
    denominator of the pure-random fraction (default 4: one execution in
    four explores purely randomly); [initial] pre-seeds the corpus (a
    campaign resume passes the persisted corpus); [exchange] links this
    factory's corpus to other workers' through a shared novelty hub and
    marks the factory parallel-safe. *)
