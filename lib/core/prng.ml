type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 output function: see Steele, Lea & Flood, OOPSLA 2014. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  create ~seed

(* Keep 62 bits so the result fits OCaml's 63-bit native int as a
   non-negative value. *)
let mask62 = 0x3FFF_FFFF_FFFF_FFFFL

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let nonneg = Int64.to_int (Int64.logand (next_int64 t) mask62) in
  nonneg mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t bound =
  let nonneg = Int64.to_float (Int64.logand (next_int64 t) mask62) in
  bound *. (nonneg /. Int64.to_float mask62)

let pick t xs =
  match xs with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ ->
    (* One traversal (to an array) instead of List.length + List.nth; the
       draw is unchanged (bound = length), so PRNG streams are stable. *)
    let arr = Array.of_list xs in
    arr.(int t (Array.length arr))

let pick_array t xs =
  if Array.length xs = 0 then invalid_arg "Prng.pick_array: empty array";
  xs.(int t (Array.length xs))

let shuffle t xs =
  for i = Array.length xs - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = xs.(i) in
    xs.(i) <- xs.(j);
    xs.(j) <- tmp
  done
