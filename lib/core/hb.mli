(** Per-execution happens-before tracking (vector clocks).

    One recorder observes a single execution as the {!Runtime} unfolds it:
    every scheduling step (a machine start or an event dequeue) gets a
    vector clock — one component per machine — merged from

    - the machine's own previous step,
    - the delivered message's clock (snapshotted at send time), and
    - the conflict clocks of every shared object the step operates on:
      target inboxes (two enqueues into the same inbox conflict, since
      their order is the FIFO order), crash targets ([crash] conflicts
      with everything the crashed machine did or will do), and monitors
      (notifications of one monitor are totally ordered — monitor state
      transitions must be preserved).

    [send_faulty] participates fully: a dropped or coalesced send still
    touched the target (conservatively ordered), a duplicated send is two
    ordinary sends, and a delayed message carries its sender's clock until
    the delivery actually enqueues it — so fault schedules stay sound
    under reduction.

    Two steps are {e independent} when their clocks are incomparable: no
    chain of deliveries, inbox conflicts, crashes or monitor
    notifications orders one before the other. Swapping two adjacent
    independent steps yields an equivalent execution (same Mazurkiewicz
    trace), which is what {!Sleep_strategy} exploits to prune and what
    {!canonical_fingerprint} quotients away.

    A recorder makes {e no} strategy draws and never perturbs the
    schedule; with [Runtime.config.hb = None] the runtime does not touch
    this module at all (same zero-cost contract as logging/coverage,
    pinned by [test/test_golden.ml]). *)

type t

val create : unit -> t

(** {1 Runtime hooks}

    Called by the {!Runtime} only (in execution order). [machine],
    [parent], [child] and [target] are machine creation indices. *)

(** [on_create t ~parent ~child] registers a machine; the child inherits
    the creator's causal past ([parent = -1] for the root). *)
val on_create : t -> parent:int -> child:int -> unit

(** [begin_step t ~machine ~msg] opens the next scheduling step: [machine]
    starts ([msg = -1]) or dequeues the message stamped [msg]. The
    previous step (if any) is closed. *)
val begin_step : t -> machine:int -> msg:int -> unit

(** [on_send t ~target] records an enqueue into [target]'s inbox by the
    current step and returns a stamp for the message (its clock, carried
    until the dequeue). Two sends to the same inbox are ordered (FIFO
    conflict). *)
val on_send : t -> target:int -> int

(** Like {!on_send} for a fault-delayed message: the stamp snapshots the
    sender's clock now, but the inbox conflict is recorded only when
    {!on_delayed_delivery} actually enqueues it. *)
val on_send_delayed : t -> target:int -> int

(** [on_delayed_delivery t ~target ~msg] enqueues a previously delayed
    message: the message clock joins the inbox conflict clock (the
    delivery position is decided now). May fire outside any open step
    (quiescence flush). *)
val on_delayed_delivery : t -> target:int -> msg:int -> unit

(** A send that read the target's inbox but did not enqueue (coalesced
    [send_unless_pending], or a fault-dropped send): conservatively
    ordered against the target. *)
val on_touch : t -> target:int -> unit

(** [on_crash t ~target] orders the current step against {e everything}
    [target] has done (machine clock and inbox conflict clock, both
    ways): the crash wipes inbox and volatile state, so the restart
    happens-after the crash and the crash happens-after the target's
    past. *)
val on_crash : t -> target:int -> unit

(** [on_notify t ~monitor] joins the per-monitor conflict clock both
    ways: notifications of one monitor are totally ordered. *)
val on_notify : t -> monitor:string -> unit

(** Resolved nondet draws of the current step (folded into the step's
    payload so the canonical fingerprint distinguishes executions that
    differ in data, not just order). *)

val on_bool : t -> bool -> unit
val on_int : t -> int -> unit

(** {1 Queries} *)

(** Number of scheduling steps recorded so far. *)
val steps : t -> int

(** Creation index of the machine that executed step [i] (0-based). *)
val machine_of : t -> int -> int

(** Copy of step [i]'s vector clock, indexed by machine creation index
    (component [m] counts the steps of machine [m] in the step's causal
    past, the step itself included). *)
val clock_of : t -> int -> int array

(** [ordered t i j]: does step [i] happen-before step [j]? (Reflexive:
    [ordered t i i] holds.) *)
val ordered : t -> int -> int -> bool

(** [independent t i j]: neither step happens-before the other.
    Symmetric and irreflexive by construction. *)
val independent : t -> int -> int -> bool

(** Canonical Mazurkiewicz-trace fingerprint: the steps are re-linearized
    greedily by lowest machine index among the causally ready ones
    (deterministic for a given partial order), and the resulting
    canonical sequence of (machine, step payload) pairs is hashed.
    Executions that differ only by swaps of independent steps map to the
    same fingerprint; their raw schedule fingerprints
    ({!Coverage.fingerprint}) differ. *)
val canonical_fingerprint : t -> int64

(** {1 Happening feed}

    A chronological log of cross-machine effects, consumed incrementally
    by {!Sleep_strategy} to wake sleeping machines. *)

type happening =
  | Touch of { target : int; actor : int }
      (** [actor]'s step enqueued into / read / crashed [target]'s inbox
          ([actor = -1] for a quiescence flush of a delayed message —
          attribution then follows the original sender) *)
  | Notify of { actor : int; monitor : int }
      (** [actor] notified the monitor with interned id [monitor] *)

(** Number of happenings recorded so far. *)
val happenings : t -> int

val happening : t -> int -> happening
