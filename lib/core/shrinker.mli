(** Schedule-trace shrinking.

    A found bug is witnessed by a schedule trace (paper §2); shorter
    witnesses are easier to debug. The shrinker delta-debugs the choice
    sequence: it removes chunks of choices and re-executes with a {e
    lenient} replay strategy — recorded choices are followed while they
    remain valid, and once the trace is exhausted (or a recorded choice is
    no longer possible) the run continues under a seeded random strategy.
    A candidate is kept when the execution still reports a bug of the same
    kind; the final report carries the full (exactly replayable) trace of
    the best execution found.

    This is an extension over the paper (P# reports the original witness);
    it composes with [Engine.replay]. *)

(** The lenient replay strategy backing the shrinker, exposed for tooling
    and tests: recorded choices are followed while they remain valid
    (schedule picks must be enabled, int picks must lie in
    [\[0, bound)]); at the first invalid or missing choice the run
    diverges and continues under a PRNG seeded with [seed]. *)
val lenient_strategy : Trace.t -> seed:int64 -> Strategy.t

(** [shrink config ~monitors report body] returns a report whose trace is
    no longer than the original (and usually much shorter), still failing
    with the same kind of bug. [rounds] bounds the delta-debugging passes
    (default 3). *)
val shrink :
  ?rounds:int ->
  ?monitors:(unit -> Monitor.t list) ->
  Engine.config ->
  Error.report ->
  (Runtime.ctx -> unit) ->
  Error.report
