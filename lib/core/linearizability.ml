type ('state, 'op, 'res) model = {
  init : 'state;
  apply : 'state -> 'op -> 'state * 'res;
  match_res : 'res -> 'res -> bool;
  repr_res : 'res -> string;
  repr_state : 'state -> string;
  key_of : ('op -> string) option;
}

type verdict = Linearizable of int list | Illegal of string

let verdict_to_string = function
  | Linearizable _ -> "linearizable"
  | Illegal msg -> msg

exception Found of int list

type stuck = {
  s_depth : int;  (* complete ops linearized when the search got stuck *)
  s_client : string;
  s_op : string;
  s_recorded : string;
  s_model : string;
}

(* Core WGL search on one (sub-)history. Returns a witness order or a
   deterministic description of the deepest point no candidate could
   pass. *)
let search model (ops : (_, _) History.operation array) =
  let n = Array.length ops in
  let invoke_seq = Array.map (fun o -> o.History.invoke_seq) ops in
  let respond_seq =
    Array.map
      (fun o ->
        match o.History.result with
        | Some (_, _, _, seq) -> seq
        | None -> max_int)
      ops
  in
  let complete = Array.map (fun o -> o.History.result <> None) ops in
  let total_complete =
    Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 complete
  in
  let in_rem = Array.make n true in
  (* bitset mirror of in_rem, used as the memo key prefix *)
  let bits = Bytes.make ((n + 8) / 8) '\000' in
  let set_bit i =
    Bytes.unsafe_set bits (i lsr 3)
      (Char.chr (Char.code (Bytes.unsafe_get bits (i lsr 3)) lor (1 lsl (i land 7))))
  in
  let clear_bit i =
    Bytes.unsafe_set bits (i lsr 3)
      (Char.chr
         (Char.code (Bytes.unsafe_get bits (i lsr 3)) land lnot (1 lsl (i land 7))))
  in
  for i = 0 to n - 1 do
    set_bit i
  done;
  let memo = Hashtbl.create 64 in
  let best : stuck option ref = ref None in
  let record_stuck ~depth i model_repr =
    let keep =
      match !best with None -> true | Some s -> depth > s.s_depth
    in
    if keep then
      let o = ops.(i) in
      let recorded =
        match o.History.result with
        | Some (_, repr, _, _) -> repr
        | None -> assert false
      in
      best :=
        Some
          {
            s_depth = depth;
            s_client = o.History.client;
            s_op = o.History.op_repr;
            s_recorded = recorded;
            s_model = model_repr;
          }
  in
  let rec dfs st done_complete acc =
    if done_complete = total_complete then raise (Found (List.rev acc));
    let key = Bytes.to_string bits ^ "\000" ^ model.repr_state st in
    if not (Hashtbl.mem memo key) then begin
      Hashtbl.add memo key ();
      let min_resp = ref max_int in
      for i = 0 to n - 1 do
        if in_rem.(i) && respond_seq.(i) < !min_resp then
          min_resp := respond_seq.(i)
      done;
      for i = 0 to n - 1 do
        (* minimal ops only: an op already invoked before every remaining
           response may linearize next *)
        if in_rem.(i) && invoke_seq.(i) < !min_resp then begin
          let st', r = model.apply st ops.(i).History.op in
          if complete.(i) then begin
            let recorded =
              match ops.(i).History.result with
              | Some (res, _, _, _) -> res
              | None -> assert false
            in
            if model.match_res r recorded then begin
              in_rem.(i) <- false;
              clear_bit i;
              dfs st' (done_complete + 1) (ops.(i).History.id :: acc);
              in_rem.(i) <- true;
              set_bit i
            end
            else record_stuck ~depth:done_complete i (model.repr_res r)
          end
          else begin
            (* pending: may have taken effect (linearize it, any result)
               or not (simply never pick it) *)
            in_rem.(i) <- false;
            clear_bit i;
            dfs st' done_complete (ops.(i).History.id :: acc);
            in_rem.(i) <- true;
            set_bit i
          end
        end
      done
    end
  in
  match dfs model.init 0 [] with
  | () ->
      let msg =
        match !best with
        | Some s ->
            Printf.sprintf
              "history not linearizable: linearized %d/%d complete ops; no \
               order explains %s %s -> %s (model would produce %s)"
              s.s_depth total_complete s.s_client s.s_op s.s_recorded s.s_model
        | None -> "history not linearizable"
      in
      Error msg
  | exception Found witness -> Ok witness

let by_id a b = compare a.History.id b.History.id

let check_operations model operations =
  let run ops_list =
    search model (Array.of_list (List.sort by_id ops_list))
  in
  match model.key_of with
  | None -> (
      match run operations with
      | Ok w -> Linearizable w
      | Error msg -> Illegal msg)
  | Some key_of ->
      (* P-compositionality: per-key sub-histories check independently *)
      let groups = Hashtbl.create 16 in
      List.iter
        (fun o ->
          let k = key_of o.History.op in
          Hashtbl.replace groups k
            (o :: (try Hashtbl.find groups k with Not_found -> [])))
        operations;
      let keys =
        List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) groups [])
      in
      let rec go acc = function
        | [] -> Linearizable (List.concat (List.rev acc))
        | k :: rest -> (
            match run (Hashtbl.find groups k) with
            | Ok w -> go (w :: acc) rest
            | Error msg -> Illegal (Printf.sprintf "key %s: %s" k msg))
      in
      go [] keys

let check model history = check_operations model (History.operations history)
