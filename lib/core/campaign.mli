(** Persistent campaign state.

    A {e campaign} is a bug hunt that accumulates knowledge across process
    invocations: the merged {!Coverage} of every execution spent so far,
    the fuzz corpus of coverage-novel schedules, and an archive holding
    one witness trace per distinct bug kind found. Saved as a directory:

    {v
    DIR/campaign.meta          strict versioned manifest
    DIR/coverage               Coverage save format
    DIR/corpus/NNNNN.trace     corpus entries (Trace save format)
    DIR/witnesses/NNNNN.trace  one witness per distinct bug kind
    v}

    A resumed invocation seeds the engine with the stored state
    ({!Engine.config}[.start_iteration], [.prior_coverage],
    [.fuzz_initial]) so it explores {e new} iterations, judges novelty
    against everything already seen, and mutates the corpus that got
    there — which is what makes executions-to-first-bug drop across
    invocations.

    Loading is strict in the {!Trace.of_string} mold: version mismatches,
    truncation, non-canonical numbers and missing component files are all
    rejected with [Failure] — a corrupted campaign must fail loudly, not
    resume as a subtly different hunt. *)

type t = {
  harness : string;  (** harness name the campaign belongs to *)
  seed : int64;  (** base seed of the campaign *)
  executions : int;  (** executions spent across all invocations so far *)
  coverage : Coverage.t;  (** merged coverage of all those executions *)
  corpus : Fuzz_strategy.corpus_entry list;
      (** fuzz corpus in discovery order, each entry carrying its
          mutation energy and the typed novelty tags that admitted it.
          The metadata persists as strict [centry:<energy>[,tag...]]
          manifest lines (canonical tag order, canonical integers), so a
          resume restarts the power schedule exactly where it stopped. *)
  witnesses : (string * Trace.t) list;
      (** found bugs: [(kind, witness)] in discovery order, one entry per
          distinct kind *)
}

(** A fresh campaign: zero executions, empty coverage/corpus/witnesses. *)
val create : harness:string -> seed:int64 -> t

(** [advance t ~executions ~coverage ~corpus] folds one finished
    invocation in: adds [executions] to the spent total and replaces the
    coverage map and corpus with the invocation's cumulative ones. *)
val advance :
  t ->
  executions:int ->
  coverage:Coverage.t ->
  corpus:Fuzz_strategy.corpus_entry list ->
  t

(** Archives a witness for [kind]; a kind already archived is kept
    unchanged (the first witness wins). *)
val record_witness : t -> kind:string -> trace:Trace.t -> t

(** [save ~dir t] writes the campaign directory (created if missing,
    overwritten if present). The manifest is written last, so an
    interrupted save leaves the previously saved campaign loadable. *)
val save : dir:string -> t -> unit

(** Strict inverse of {!save}.
    @raise Failure on any malformed or missing component. *)
val load : dir:string -> t

(** [None] when [dir] holds no campaign (no manifest); otherwise
    {!load}'s result, including its [Failure] on corruption. *)
val load_opt : dir:string -> t option

(** One-line summary (harness, seed, executions spent, corpus and witness
    sizes). *)
val pp : Format.formatter -> t -> unit
