module Int_set = Set.Make (Int)

let make ~seed ~delays ~max_steps ~iteration : Strategy.t =
  let rng =
    Prng.create ~seed:(Int64.add seed (Int64.of_int (iteration * 2 + 1)))
  in
  let delay_steps =
    let rec sample acc remaining =
      if remaining = 0 then acc
      else
        let s = Prng.int rng max_steps in
        if Int_set.mem s acc then sample acc remaining
        else sample (Int_set.add s acc) (remaining - 1)
    in
    sample Int_set.empty (min delays max_steps)
  in
  let last = ref (-1) in
  let next_schedule ~enabled ~n ~step =
    let default =
      (* run-to-completion: stick with the last machine while enabled *)
      if Strategy.enabled_mem enabled n !last then !last else enabled.(0)
    in
    let choice =
      if Int_set.mem step delay_steps then begin
        (* delay the machine that would have run: next enabled after it *)
        let idx = ref 0 in
        for i = 0 to n - 1 do
          if enabled.(i) = default then idx := i
        done;
        enabled.((!idx + 1) mod n)
      end
      else default
    in
    last := choice;
    choice
  in
  {
    name = "delay-bounded";
    next_schedule;
    next_bool = (fun ~step:_ -> Prng.bool rng);
    next_int = (fun ~bound ~step:_ -> Prng.int rng bound);
  }

let factory ~seed ?(delays = 2) ?(max_steps = 10_000) () =
  Strategy.stateless ~name:"delay-bounded" (fun ~iteration ->
      make ~seed ~delays ~max_steps ~iteration)
