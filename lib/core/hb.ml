(* Vector clocks over machine creation indices. Clock arrays are treated
   as immutable: every update joins into a *fresh* array, so snapshots
   (message stamps, per-step clocks) may alias freely. Components missing
   off the end of a shorter array read as 0, which is how clocks grow as
   machines are created mid-execution. *)

type step = {
  sm : int;  (* machine that executed the step *)
  mutable sclock : int array;
      (* end-of-step clock; kept current as the step absorbs object
         clocks (sends, crashes, notifies) while it runs *)
  mutable payload : int64;
      (* hash of the step's schedule-invariant content: delivered message
         identity (sender + per-sender ordinal), nondet draws, send /
         crash / notify effects *)
}

type happening =
  | Touch of { target : int; actor : int }
  | Notify of { actor : int; monitor : int }

type t = {
  mutable mclock : int array array;  (* machine -> clock of its causal past *)
  mutable iclock : int array array;
      (* machine -> inbox conflict clock: join of every enqueue (and
         crash/touch) against this machine's inbox. Dequeues do not join
         it — enqueue-at-back commutes with dequeue-at-front whenever the
         dequeuer is enabled either way. *)
  mutable nmach : int;
  mutable msgs : int array array;  (* stamp -> sender clock at send time *)
  mutable msg_sender : int array;
  mutable msg_ord : int array;  (* per-sender send ordinal (stable) *)
  mutable nmsg : int;
  mutable send_count : int array;  (* per machine *)
  mutable steps_arr : step array;
  mutable nsteps : int;
  mutable haps : happening array;
  mutable nhaps : int;
  mons : (string, int) Hashtbl.t;
  mutable monclock : int array array;
  mutable nmons : int;
}

let dummy_step = { sm = -1; sclock = [||]; payload = 0L }

let create () =
  {
    mclock = [||];
    iclock = [||];
    nmach = 0;
    msgs = [||];
    msg_sender = [||];
    msg_ord = [||];
    nmsg = 0;
    send_count = [||];
    steps_arr = [||];
    nsteps = 0;
    haps = [||];
    nhaps = 0;
    mons = Hashtbl.create 8;
    monclock = [||];
    nmons = 0;
  }

(* --- clocks ------------------------------------------------------------ *)

let get c i = if i < Array.length c then Array.unsafe_get c i else 0

let join a b =
  let la = Array.length a and lb = Array.length b in
  if la >= lb then begin
    let c = Array.copy a in
    for i = 0 to lb - 1 do
      if b.(i) > c.(i) then c.(i) <- b.(i)
    done;
    c
  end
  else begin
    let c = Array.copy b in
    for i = 0 to la - 1 do
      if a.(i) > c.(i) then c.(i) <- a.(i)
    done;
    c
  end

let bump c m =
  let l = max (Array.length c) (m + 1) in
  let c' = Array.make l 0 in
  Array.blit c 0 c' 0 (Array.length c);
  c'.(m) <- c'.(m) + 1;
  c'

(* --- growable storage -------------------------------------------------- *)

let grow_arr arr n fill =
  if n < Array.length arr then arr
  else begin
    let bigger = Array.make (max 8 (2 * (n + 1))) fill in
    Array.blit arr 0 bigger 0 (Array.length arr);
    bigger
  end

let ensure_machine t m =
  if m >= t.nmach then begin
    t.mclock <- grow_arr t.mclock m [||];
    t.iclock <- grow_arr t.iclock m [||];
    t.send_count <- grow_arr t.send_count m 0;
    t.nmach <- m + 1
  end

let push_step t s =
  t.steps_arr <- grow_arr t.steps_arr t.nsteps dummy_step;
  t.steps_arr.(t.nsteps) <- s;
  t.nsteps <- t.nsteps + 1

let push_hap t h =
  t.haps <- grow_arr t.haps t.nhaps (Touch { target = -1; actor = -1 });
  t.haps.(t.nhaps) <- h;
  t.nhaps <- t.nhaps + 1

let new_msg t ~sender clock =
  let stamp = t.nmsg in
  t.msgs <- grow_arr t.msgs stamp [||];
  t.msg_sender <- grow_arr t.msg_sender stamp (-1);
  t.msg_ord <- grow_arr t.msg_ord stamp 0;
  t.msgs.(stamp) <- clock;
  t.msg_sender.(stamp) <- sender;
  t.msg_ord.(stamp) <- t.send_count.(sender);
  t.send_count.(sender) <- t.send_count.(sender) + 1;
  t.nmsg <- stamp + 1;
  stamp

(* --- payload hashing (FNV-1a, same constants as Coverage) -------------- *)

let fnv_prime = 0x100000001b3L
let fnv_offset = 0xcbf29ce484222325L
let mix h x = Int64.mul (Int64.logxor h (Int64.of_int x)) fnv_prime

let strhash s =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3fffffff) s;
  !h

let cur_step t =
  if t.nsteps = 0 then invalid_arg "Hb: no open step" else t.steps_arr.(t.nsteps - 1)

let mix_payload t tag v =
  let s = cur_step t in
  s.payload <- mix (mix s.payload tag) v

(* The current step's machine clock: keep the step snapshot and the
   machine clock in lockstep while the step runs. *)
let set_actor_clock t m c =
  t.mclock.(m) <- c;
  let s = cur_step t in
  if s.sm = m then s.sclock <- c

(* --- runtime hooks ----------------------------------------------------- *)

let on_create t ~parent ~child =
  ensure_machine t child;
  if parent >= 0 then begin
    ensure_machine t parent;
    t.mclock.(child) <- t.mclock.(parent);
    t.iclock.(child) <- t.mclock.(parent)
  end

let begin_step t ~machine ~msg =
  ensure_machine t machine;
  let c = t.mclock.(machine) in
  let c = if msg >= 0 then join c t.msgs.(msg) else c in
  let c = bump c machine in
  t.mclock.(machine) <- c;
  let payload =
    if msg >= 0 then
      mix (mix (mix fnv_offset 1) t.msg_sender.(msg)) t.msg_ord.(msg)
    else mix fnv_offset 0
  in
  push_step t { sm = machine; sclock = c; payload }

let actor t = (cur_step t).sm

let on_send t ~target =
  ensure_machine t target;
  let a = actor t in
  let c = join t.mclock.(a) t.iclock.(target) in
  set_actor_clock t a c;
  t.iclock.(target) <- c;
  mix_payload t 4 target;
  push_hap t (Touch { target; actor = a });
  new_msg t ~sender:a c

let on_send_delayed t ~target =
  ensure_machine t target;
  let a = actor t in
  mix_payload t 8 target;
  new_msg t ~sender:a t.mclock.(a)

let on_delayed_delivery t ~target ~msg =
  ensure_machine t target;
  let c = join t.msgs.(msg) t.iclock.(target) in
  t.msgs.(msg) <- c;
  t.iclock.(target) <- c;
  push_hap t (Touch { target; actor = t.msg_sender.(msg) })

let on_touch t ~target =
  ensure_machine t target;
  let a = actor t in
  (* the decision read the whole inbox state, so it conflicts with the
     target's dequeues too: join machine and inbox clocks, both ways *)
  let c = join (join t.mclock.(a) t.iclock.(target)) t.mclock.(target) in
  set_actor_clock t a c;
  t.iclock.(target) <- c;
  t.mclock.(target) <- c;
  mix_payload t 7 target;
  push_hap t (Touch { target; actor = a })

let on_crash t ~target =
  ensure_machine t target;
  let a = actor t in
  let c = join (join t.mclock.(a) t.mclock.(target)) t.iclock.(target) in
  set_actor_clock t a c;
  t.mclock.(target) <- c;
  t.iclock.(target) <- c;
  mix_payload t 5 target;
  push_hap t (Touch { target; actor = a })

let monitor_id t name =
  match Hashtbl.find_opt t.mons name with
  | Some id -> id
  | None ->
    let id = t.nmons in
    t.monclock <- grow_arr t.monclock id [||];
    t.nmons <- id + 1;
    Hashtbl.replace t.mons name id;
    id

let on_notify t ~monitor =
  let a = actor t in
  let id = monitor_id t monitor in
  let c = join t.mclock.(a) t.monclock.(id) in
  set_actor_clock t a c;
  t.monclock.(id) <- c;
  mix_payload t 6 (strhash monitor);
  push_hap t (Notify { actor = a; monitor = id })

let on_bool t b = mix_payload t 2 (if b then 1 else 0)
let on_int t v = mix_payload t 3 v

(* --- queries ----------------------------------------------------------- *)

let steps t = t.nsteps
let machine_of t i = t.steps_arr.(i).sm
let clock_of t i = Array.copy t.steps_arr.(i).sclock

let ordered t i j =
  if i = j then true
  else begin
    let si = t.steps_arr.(i) in
    let sj = t.steps_arr.(j) in
    (* i happens-before j iff j's causal past contains at least as many
       steps of i's machine as i's own step count — the standard O(1)
       vector-clock test. *)
    get sj.sclock si.sm >= get si.sclock si.sm
  end

let independent t i j = i <> j && (not (ordered t i j)) && not (ordered t j i)

let happenings t = t.nhaps
let happening t i = t.haps.(i)

(* Greedy canonical linearization: repeatedly emit, among the steps whose
   whole causal past is already emitted, the one belonging to the lowest
   machine index. Deterministic for a given partial order, so any two
   linearizations of the same Mazurkiewicz trace hash identically. *)
let canonical_fingerprint t =
  let n = t.nsteps in
  let nm = t.nmach in
  (* per-machine step lists in program order *)
  let count = Array.make (max nm 1) 0 in
  for i = 0 to n - 1 do
    let m = t.steps_arr.(i).sm in
    count.(m) <- count.(m) + 1
  done;
  let by_machine = Array.map (fun c -> Array.make (max c 1) 0) count in
  let fill = Array.make (max nm 1) 0 in
  for i = 0 to n - 1 do
    let m = t.steps_arr.(i).sm in
    by_machine.(m).(fill.(m)) <- i;
    fill.(m) <- fill.(m) + 1
  done;
  let heads = Array.make (max nm 1) 0 in
  let emitted_per = Array.make (max nm 1) 0 in
  let h = ref fnv_offset in
  let emitted = ref 0 in
  while !emitted < n do
    let chosen = ref (-1) in
    let m = ref 0 in
    while !chosen < 0 && !m < nm do
      if heads.(!m) < count.(!m) then begin
        let s = by_machine.(!m).(heads.(!m)) in
        let c = t.steps_arr.(s).sclock in
        let ready = ref true in
        let q = ref 0 in
        while !ready && !q < nm do
          if !q <> !m && get c !q > emitted_per.(!q) then ready := false;
          incr q
        done;
        if !ready then chosen := s
      end;
      if !chosen < 0 then incr m
    done;
    (* The dependence clocks are acyclic by construction (steps only ever
       absorb earlier steps), so some head is always ready; fall back to
       the positionally-first unemitted step defensively. *)
    let s, m =
      if !chosen >= 0 then (!chosen, !m)
      else begin
        let best = ref max_int in
        for q = 0 to nm - 1 do
          if heads.(q) < count.(q) then
            best := min !best by_machine.(q).(heads.(q))
        done;
        (!best, t.steps_arr.(!best).sm)
      end
    in
    let st = t.steps_arr.(s) in
    h := Int64.mul (Int64.logxor (mix !h m) st.payload) fnv_prime;
    heads.(m) <- heads.(m) + 1;
    emitted_per.(m) <- emitted_per.(m) + 1;
    incr emitted
  done;
  !h
