(* Sleep sets over the dynamic happens-before feed. All state is local to
   the wrapped strategy value (one per execution). Machine indices are
   creation indices, the same ints the runtime's enabled buffer holds. *)

type state = {
  mutable asleep : bool array;  (* machine -> sleeping?, grown on demand *)
  mutable slept_at : int array;  (* machine -> step index it fell asleep *)
  mutable n_asleep : int;
  mutable sent_to : int list array;  (* machine -> targets it has sent to *)
  mutable notified : int list array;  (* monitor id -> machines that notified *)
  mutable cursor : int;  (* happenings consumed from the feed *)
  mutable prev : int array;  (* candidates offered at the previous point *)
  mutable prev_n : int;
  mutable prev_choice : int;
  mutable scratch : int array;  (* pruned enabled set handed to the base *)
}

let grow arr n fill =
  if n < Array.length arr then arr
  else begin
    let bigger = Array.make (max 8 (2 * (n + 1))) fill in
    Array.blit arr 0 bigger 0 (Array.length arr);
    bigger
  end

let is_asleep st m = m < Array.length st.asleep && st.asleep.(m)

(* Sleep entries expire: the happens-before feed only sees messages,
   crashes and monitor notifications, so dependence through shared harness
   state (a model's in-memory "disk" record, say) is invisible to the wake
   rules. An unbounded sleep set could then park the one machine whose
   step trips the bug for the rest of the execution. Bounding every nap
   keeps the wrapper a pure exploration heuristic: any enabled machine
   runs at most [sleep_ttl] scheduling points after it was skipped, so no
   schedule is unreachable — merely deprioritized. *)
let sleep_ttl = 12

let sleep st m ~step =
  st.asleep <- grow st.asleep m false;
  st.slept_at <- grow st.slept_at m 0;
  st.slept_at.(m) <- step;
  if not st.asleep.(m) then begin
    st.asleep.(m) <- true;
    st.n_asleep <- st.n_asleep + 1
  end

let wake st m =
  if is_asleep st m then begin
    st.asleep.(m) <- false;
    st.n_asleep <- st.n_asleep - 1
  end

let wake_all st =
  if st.n_asleep > 0 then begin
    Array.fill st.asleep 0 (Array.length st.asleep) false;
    st.n_asleep <- 0
  end

let note_sent st ~actor ~target =
  st.sent_to <- grow st.sent_to actor [];
  if not (List.mem target st.sent_to.(actor)) then
    st.sent_to.(actor) <- target :: st.sent_to.(actor)

(* Waking rule for a touch of [target] by [actor]: the target itself (its
   pending dequeue no longer commutes with the touching step), and every
   sleeping machine that has previously sent to [target] (its pending
   step plausibly enqueues there again — two enqueues into one inbox
   conflict). *)
let on_touch st ~target ~actor =
  wake st target;
  if st.n_asleep > 0 then begin
    let n = Array.length st.asleep in
    for m = 0 to n - 1 do
      if
        st.asleep.(m) && m <> actor
        && m < Array.length st.sent_to
        && List.mem target st.sent_to.(m)
      then wake st m
    done
  end;
  if actor >= 0 then note_sent st ~actor ~target

let on_notify st ~actor ~monitor =
  st.notified <- grow st.notified monitor [];
  List.iter (fun m -> if m <> actor then wake st m) st.notified.(monitor);
  if not (List.mem actor st.notified.(monitor)) then
    st.notified.(monitor) <- actor :: st.notified.(monitor)

let drain st hb =
  let n = Hb.happenings hb in
  while st.cursor < n do
    (match Hb.happening hb st.cursor with
     | Hb.Touch { target; actor } -> on_touch st ~target ~actor
     | Hb.Notify { actor; monitor } -> on_notify st ~actor ~monitor);
    st.cursor <- st.cursor + 1
  done

let wrap ~hb (base : Strategy.t) =
  let st =
    {
      asleep = [||];
      slept_at = [||];
      n_asleep = 0;
      sent_to = [||];
      notified = [||];
      cursor = 0;
      prev = [||];
      prev_n = 0;
      prev_choice = -1;
      scratch = [||];
    }
  in
  let next_schedule ~enabled ~n ~step =
    (* 1. the candidates skipped at the previous point go to sleep ... *)
    for k = 0 to st.prev_n - 1 do
      let e = st.prev.(k) in
      if e <> st.prev_choice then sleep st e ~step
    done;
    (* 2. ... then the executed step's effects wake the dependent ones,
       and naps older than the TTL expire *)
    drain st hb;
    if st.n_asleep > 0 then
      for m = 0 to Array.length st.asleep - 1 do
        if st.asleep.(m) && step - st.slept_at.(m) >= sleep_ttl then
          wake st m
      done;
    (* 3. prune (into a private buffer — the runtime's scratch array must
       not be retained, and the base gets the same contract) *)
    st.scratch <- grow st.scratch n 0;
    let n' = ref 0 in
    for i = 0 to n - 1 do
      let m = enabled.(i) in
      if not (is_asleep st m) then begin
        st.scratch.(!n') <- m;
        incr n'
      end
    done;
    let arr, nn =
      if !n' = 0 then begin
        (* everyone enabled is asleep: waking them all keeps the run going
           (heuristic pruning must never manufacture a deadlock) *)
        wake_all st;
        Array.blit enabled 0 st.scratch 0 n;
        (st.scratch, n)
      end
      else (st.scratch, !n')
    in
    let choice = base.Strategy.next_schedule ~enabled:arr ~n:nn ~step in
    (* 4. remember the offered set for the next point's sleep rule *)
    st.prev <- grow st.prev nn 0;
    Array.blit arr 0 st.prev 0 nn;
    st.prev_n <- nn;
    st.prev_choice <- choice;
    choice
  in
  {
    Strategy.name = "sleep(" ^ base.Strategy.name ^ ")";
    next_schedule;
    next_bool = base.Strategy.next_bool;
    next_int = base.Strategy.next_int;
  }
