(** Declarative test scenarios compiled to constraining strategy wrappers.

    A scenario is a small set of declarative clauses over machine and event
    {e predicates} — ordering constraints ("no [Sync_report] is delivered
    before the first [Fail_en]"), fault placement ("crash some [EN*] after
    the harness enters [Repairing]", "drop every [Router]→[N*] message
    between step 30 and step 120") and scheduling focus ("pause the
    migrator until the clients settle"). Scenarios compile to a strategy
    {e wrapper} in the style of {!Sleep_strategy}: the base strategy
    (random, PCT, fuzz, …) still makes every choice, but the wrapper
    prunes the enabled set and forces the fault draws the clauses demand.
    Constraining rather than replacing the search keeps every downstream
    tool working unchanged: scenario-found traces replay, shrink, feed
    fuzz corpora and run under campaigns, because forced draws are
    recorded in the trace exactly like free ones.

    The text form is strict and canonical in the style of {!Trace} and
    {!Fault}: [of_string] accepts exactly what [to_string] produces (one
    clause per line), making scenarios CLI-able and persistable. *)

(** {1 Predicates} *)

(** A machine- or event-name pattern: either an exact name ([Tables]) or a
    prefix glob ([Replica*], bare [*] for everything). *)
type pat

(** [pat s] parses a pattern. Valid patterns are a non-empty run of
    [A-Za-z0-9_.-] optionally followed by a single trailing [*], or the
    bare [*].
    @raise Invalid_argument otherwise. *)
val pat : string -> pat

val pat_matches : pat -> string -> bool
val pat_to_string : pat -> string

(** {1 Triggers}

    Triggers are {e latching}: once fired they stay fired for the rest of
    the execution, so every clause's lifecycle is monotone and the
    wrapper's pruning decisions are reproducible from the recorded
    journal. *)

type trigger

val start : trigger
(** fires immediately *)

val at_step : int -> trigger
(** fires once the scheduling step counter reaches [n] *)

val at_time : int -> trigger
(** fires once virtual time reaches [n] (with the clock off, virtual time
    never advances, so [at_time n] with [n > 0] never fires) *)

val delivered : ?count:int -> pat -> trigger
(** fires on the [count]-th (default 1st) dequeue of an event whose name
    matches the pattern *)

val entered : pat -> string -> trigger
(** fires when a machine matching the pattern calls [set_state_name] with
    exactly this state *)

val quiet : pat -> trigger
(** fires the first time a machine matching the pattern is observed
    quiescent: it has been seen enabled at some earlier scheduling point
    and is now absent from the enabled set *)

val crashed : pat -> trigger
(** fires when a machine matching the pattern crashes *)

(** {1 Clauses} *)

type clause

val order : pat -> pat -> clause
(** [order a b]: no event matching [b] is dequeued before the first
    dequeue of an event matching [a]. Enforced by pruning machines whose
    next dequeue matches [b] while [a] is still outstanding. *)

val crash_when : pat -> after:trigger -> clause
(** [crash_when victim ~after]: once [after] fires, the {!Fault_driver}'s
    next crash coin is forced and aimed at a machine matching [victim]
    (preferring one the scenario has not crashed yet — stack several
    clauses for rolling restarts). Until [after] fires the coin is forced
    {e off}, so no stray crash predates its trigger. *)

val partition :
  pat -> pat -> from_:trigger -> until_:trigger -> clause
(** [partition a b ~from_ ~until_]: while the window is active, every
    interposed send crossing between side [a] and side [b] (either
    direction) is forced to drop. A machine matching [b] belongs to side
    [b] even if it also matches [a] — the more specific side wins — so
    [partition * N2] isolates [N2] from everyone else. *)

val drop_link : src:pat -> dst:pat -> from_:trigger -> until_:trigger -> clause
(** one-directional forced drop on matching links while active (asymmetric
    partitions) *)

val dup_link : src:pat -> dst:pat -> from_:trigger -> until_:trigger -> clause
(** matching sends are forced to duplicate while active *)

val delay_link :
  src:pat -> dst:pat -> latency:int -> from_:trigger -> until_:trigger -> clause
(** matching sends are forced to delay with the given latency while
    active *)

val pause : pat -> from_:trigger -> until_:trigger -> clause
(** machines matching the pattern are pruned from the enabled set while
    the window is active (they dequeue nothing) *)

val focus : pat -> from_:trigger -> until_:trigger -> clause
(** while active, if any enabled machine matches the pattern, machines
    that do not match are pruned — scheduling focus without exclusion
    when nothing matching is runnable *)

(** {1 Scenarios} *)

type t

(** [make clauses] validates and builds a scenario.
    @raise Invalid_argument on an empty list or duplicate clauses. *)
val make : clause list -> t

val clauses : t -> clause list
val clause_to_string : clause -> string

(** Canonical text: one clause per line, each line newline-terminated. A
    fixpoint of {!of_string}. *)
val to_string : t -> string

(** Strict parser: accepts exactly the canonical rendering (plus nothing
    else — no blank lines, no duplicate clauses, no unknown keywords, no
    non-canonical integer or pattern spellings). *)
val of_string : string -> (t, string) result

(** [arm t spec] returns [spec] with every fault kind the clauses need
    armed and the budget raised so forced injections cannot starve:
    partition/drop clauses arm [Drop], dup clauses [Duplicate], delay
    clauses [Delay] (with [max_delay] at least the largest forced
    latency), crash clauses [Crash] (budget +1 each); each link-window
    clause adds 48 budget. A scenario with no fault clauses returns
    [spec] unchanged. *)
val arm : t -> Fault.spec -> Fault.spec

val has_crash_clauses : t -> bool

(** Number of [crash_when] clauses — the fault driver uses it as a floor
    for its crash allowance so multi-crash scenarios need no harness
    changes. *)
val crash_slots : t -> int

(** {1 Journal}

    Per-execution observations recorded by the runtime hooks and the
    wrapper, sufficient for {!check} to revalidate every clause
    independently of the enforcement code paths. *)

type fate = Passed | Dropped | Dupped | Delayed

type journal_entry =
  | J_deliver of {
      step : int;
      time : int;
      sender : string;  (** ["-"] for environment sends *)
      receiver : string;
      event : string;
    }
  | J_send of {
      step : int;
      time : int;
      sender : string;
      target : string;
      event : string;
      fate : fate;
          (** what the draws actually resolved to — forced by the wrapper
              on constrained links, chosen freely by the base elsewhere *)
      budget : int;  (** faults remaining when the send was interposed *)
    }
  | J_state of { step : int; machine : string; state : string }
  | J_crash of { step : int; time : int; machine : string }
  | J_quiet of { step : int; machine : string }
      (** first observed quiescence of the machine *)

val journal_entry_to_string : journal_entry -> string

(** [check t journal] replays the journal through an independent
    constraint checker: trigger and window states are recomputed from the
    entries alone and every clause obligation is validated (an admitted
    delivery violating an order or pause clause, an in-window matching
    send with budget left whose fate is not the forced one, a crash no
    fired clause accounts for). Returns the list of violations. *)
val check : t -> journal_entry list -> (unit, string list) result

(** {1 Per-execution observer} *)

module Obs : sig
  type scenario := t

  (** Mutable per-execution state shared between the runtime hooks and
      the strategy wrapper. Create a fresh one per execution. *)
  type t

  (** [create scenario ~faults] — [faults] must be the (already
      {!arm}ed) spec the execution runs under; the wrapper needs it to
      know the kind-draw vocabulary of [send_faulty]. *)
  val create : scenario -> faults:Fault.spec -> t

  val scenario : t -> scenario

  (** {2 Runtime hooks} — all draw-free. *)

  val on_create : t -> index:int -> name:string -> unit
  val on_state : t -> step:int -> index:int -> state:string -> unit

  val on_deliver :
    t -> step:int -> time:int -> sender:int -> receiver:int -> event:string -> unit

  val on_crash : t -> step:int -> time:int -> target:int -> unit

  (** Called immediately before [send_faulty] draws its fault coin (and
      only when it will draw: message faults armed, budget left, target
      alive). Marks the semantic purpose of the imminent draws so the
      wrapper can force them. *)
  val pre_send :
    t -> step:int -> time:int -> sender:int -> target:int -> event:string ->
    budget:int -> unit

  (** Scenario has crash clauses — the fault driver switches to steered
      ticks. *)
  val crash_steering : t -> bool

  val crash_slots : t -> int

  (** Called by the fault driver immediately before its per-tick crash
      coin, with the current crashable machine names in creation order. *)
  val pre_crash_tick : t -> step:int -> victims:string list -> unit

  (** The runtime installs a peek callback: machine creation index ↦ name
      of the event it would dequeue next (respecting its receive
      predicate), or [None]. Used to enforce [order] clauses. *)
  val set_peek : t -> (int -> string option) -> unit

  (** {2 Results} *)

  val journal : t -> journal_entry list

  (** Scheduling points where pruning emptied the enabled set and the
      wrapper fell back to the full set rather than manufacture a
      deadlock. A sound scenario keeps this at zero. *)
  val wedges : t -> int

  (** Enforcement-time self-check failures (a focus clause bypassed after
      a wedge, …). Empty for a sound scenario. *)
  val violations : t -> string list
end

(** [wrap ~obs base] — the constraining wrapper. Composes over any base
    (and over [sleep(...)]); parallel-safety is inherited from the base
    since all wrapper state lives in [obs], created per execution. *)
val wrap : obs:Obs.t -> Strategy.t -> Strategy.t
