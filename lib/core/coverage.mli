(** Execution-coverage maps.

    A coverage map records {e what} a testing run actually explored, so an
    execution budget can be judged by more than "bug or no bug" (the
    motivation behind P#'s activity coverage and Mallory-style feedback
    fuzzing). Four families of coverage points are counted, each keyed by a
    human-readable string:

    - {b machine states}: ["Machine.State"] visits (plain machines that
      never declare states appear as ["Machine.-"]);
    - {b event types}: names of events actually delivered (dequeued);
    - {b transition triples}: ["Sender -[Event]-> Receiver@State"], the
      delivery edges of the execution — who sent which event into which
      receiver state;
    - {b branch outcomes}: resolved [nondet] / [nondet_int] choices,
      ["Machine ? value"];
    - {b fault points}: injected faults, ["kind Target"] (drop, dup, delay,
      crash) — empty unless fault injection is enabled.

    In addition every execution contributes a 64-bit {e schedule
    fingerprint} (a hash of its full choice trace), so a map counts how
    many {e distinct} schedules a run explored.

    A map is either a per-execution map (filled by the {!Runtime} while one
    execution unfolds) or an accumulator (the {!Engine} absorbs each
    execution's map into a per-run accumulator, merging per-worker maps
    when exploring across domains). Maps are not thread-safe; concurrent
    absorbs must be serialized by the caller (the engine holds a mutex). *)

type t

val create : unit -> t

(** {1 Recording (one execution)} *)

val visit_state : t -> machine:string -> state:string -> unit

(** [deliver t ~sender ~event ~receiver ~state] records one event delivery:
    the event type itself and the [(sender, event, receiver@state)]
    transition triple. *)
val deliver :
  t -> sender:string -> event:string -> receiver:string -> state:string -> unit

val branch_bool : t -> machine:string -> bool -> unit
val branch_int : t -> machine:string -> bound:int -> int -> unit

(** [fault t ~kind ~target] records one injected fault point — [kind] is
    the fault name (["drop"], ["dup"], ["delay"], ["crash"]) and [target]
    the affected machine's name. *)
val fault : t -> kind:string -> target:string -> unit

(** [history t ~point] records one completed client operation from a
    recorded {!History} (rendered ["client op -> res"]). Empty unless a
    harness records a history, so history-free runs are untouched. *)
val history : t -> point:string -> unit

(** [fingerprint trace] hashes the full choice sequence (FNV-1a, 64-bit).
    Purely a function of the trace: replaying a recorded schedule yields
    the identical fingerprint. *)
val fingerprint : Trace.t -> int64

(** [note_execution t ~fingerprint] closes one execution: counts it and
    files its schedule fingerprint. *)
val note_execution : t -> fingerprint:int64 -> unit

(** [note_hb t ~fingerprint] files one execution's canonical partial-order
    fingerprint ({!Hb.canonical_fingerprint}) into the [hb] family. Two
    executions that are linearizations of the same Mazurkiewicz trace file
    the same fingerprint, so the family counts {e semantically distinct}
    interleavings where [note_execution]'s raw schedule fingerprints count
    syntactically distinct ones. Empty unless happens-before tracking is
    enabled. *)
val note_hb : t -> fingerprint:int64 -> unit

(** [schedule_digest t] is a 16-hex-digit digest of the whole
    schedule-fingerprint multiset (FNV-1a over the sorted (fingerprint,
    count) pairs): equal digests mean the run explored exactly the same
    schedules the same number of times. Used as a compact golden value by
    determinism tests. *)
val schedule_digest : t -> string

(** {1 Merging} *)

(** The novelty-bearing families of a map, used to key plateau bounds and
    typed corpus tags. [Hb] is the canonical partial-order family
    ({!note_hb}); raw schedule fingerprints are deliberately not a family
    here — they never count as novelty (see {!absorb}). *)
type family_kind = State | Event | Triple | Branch | Fault | History | Hb

(** Every family kind, in the canonical (persistence) order. *)
val all_family_kinds : family_kind list

(** Stable lowercase spelling: ["state"], ["event"], ["triple"],
    ["branch"], ["fault"], ["history"], ["hb"] — the CLI
    [--plateau-family] vocabulary and the campaign-save tag format. *)
val family_kind_to_string : family_kind -> string

(** Strict inverse of {!family_kind_to_string}.
    @raise Failure on an unknown family name. *)
val family_kind_of_string : string -> family_kind

(** Per-family novelty breakdown of one {!absorb_tagged}: how many keys of
    each family the absorbed map contributed that the accumulator had
    never seen. Raw schedule fingerprints are excluded by design (almost
    every random schedule is unique — counting them would drown the
    feedback signal); new {e hb} fingerprints are reported in [new_hb]
    but excluded from {!novel_core}, preserving the historical [absorb]
    flag. *)
type novelty = {
  new_states : int;
  new_events : int;
  new_triples : int;
  new_branches : int;
  new_faults : int;
  new_histories : int;
  new_hb : int;
}

val no_novelty : novelty

(** The historical {!absorb} flag: any new state, event type, triple,
    branch outcome, fault point or history point. New [hb] fingerprints
    alone do {e not} set it (they never did), so default-configured
    feedback and plateau semantics are unchanged. *)
val novel_core : novelty -> bool

(** [novel_in n fam]: did the absorb contribute a new key of [fam]? *)
val novel_in : novelty -> family_kind -> bool

(** Families with at least one new key, in canonical order — the typed
    novelty tags a fuzz corpus entry records. *)
val novel_families : novelty -> family_kind list

(** [absorb_tagged ~into src] adds every count of [src] into [into]
    (commutative and associative up to {!equal}, so per-worker maps may be
    merged in any order) and returns the per-family novelty breakdown. *)
val absorb_tagged : into:t -> t -> novelty

(** [absorb ~into src] = [novel_core (absorb_tagged ~into src)]: [true]
    when [src] contributed at least one {e new} coverage point — a state,
    event type, triple or branch outcome [into] had never seen. New
    schedule fingerprints alone do not count as novel (random scheduling
    makes almost every schedule unique, which would drown the signal
    feedback strategies rely on), and neither do new hb fingerprints under
    this boolean summary — use {!absorb_tagged} when hb novelty matters. *)
val absorb : into:t -> t -> bool

(** Structural equality over every counter, fingerprint multiset included. *)
val equal : t -> t -> bool

(** {1 Persistence}

    Versioned, line-oriented dump of the full map — structured keys, not
    the rendered report strings, so a loaded map merges ({!absorb}) and
    compares ({!equal}) exactly like the original. Canonical: {!equal}
    maps serialize to identical bytes. Used by {!Campaign} to carry
    merged coverage across invocations. *)

val to_save : t -> string

(** Inverse of {!to_save}. The parse is strict in the {!Trace.of_string}
    mold: an unsupported version line, unknown tags, blank lines,
    non-canonical numbers, dangling escapes, duplicate keys, and a
    missing or mismatching [end:] trailer (whole-line truncation) are all
    rejected — a corrupted file must fail loudly rather than resume as a
    subtly different map.
    @raise Failure on malformed input. *)
val of_save : string -> t

val save : path:string -> t -> unit
val load : path:string -> t

(** {1 Reading} *)

type totals = {
  machine_states : int;
  event_types : int;
  transition_triples : int;
  branch_outcomes : int;
  fault_points : int;
  history_points : int;
      (** distinct completed client operations ({!history}); [0] unless a
          harness recorded a history *)
  unique_schedules : int;
  partial_orders : int;
      (** distinct canonical partial-order fingerprints ({!note_hb});
          [0] unless happens-before tracking was enabled *)
  executions : int;
}

val totals : t -> totals

(** Entries of one family, sorted by key, with visit counts. *)

val states : t -> (string * int) list

val events : t -> (string * int) list
val triples : t -> (string * int) list
val branches : t -> (string * int) list

(** Injected fault points, rendered ["kind Target"]. *)
val faults : t -> (string * int) list

(** Completed client operations, rendered ["client op -> res"]. *)
val histories : t -> (string * int) list

(** Schedule fingerprints with the number of executions that produced
    each. *)
val schedules : t -> (int64 * int) list

(** Canonical partial-order fingerprints with the number of executions
    that produced each (empty unless happens-before tracking was on). *)
val hb_fingerprints : t -> (int64 * int) list

(** {1 Reporting} *)

(** One-line totals, e.g.
    ["12 states, 9 event types, 31 triples, 18 branch outcomes, 200/200 unique schedules"]. *)
val pp_totals : Format.formatter -> t -> unit

(** Human-readable report: totals plus the most-visited entries of each
    family (capped; the JSON report is exhaustive). *)
val pp_table : Format.formatter -> t -> unit

(** Exhaustive JSON rendering of the map (totals + every entry of every
    family + schedule fingerprints). *)
val to_json : t -> string
