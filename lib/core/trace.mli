(** Schedule traces.

    A trace is the sequence of nondeterministic choices the engine made
    during one execution: which machine was scheduled at each step, and the
    value of every [nondet] choice. Replaying a trace against the same
    program reproduces the execution deterministically — this is the paper's
    "bug witnessed by a full system trace" (§1, §2). *)

type choice =
  | Schedule of int  (** creation index of the machine scheduled *)
  | Bool of bool     (** outcome of a boolean [nondet] choice *)
  | Int of int       (** outcome of an integer [nondet] choice *)

type t

val empty : t
val of_list : choice list -> t
val to_list : t -> choice list
val length : t -> int
val equal : t -> t -> bool

(** Left fold over the choices in order, without materializing a list. *)
val fold : ('a -> choice -> 'a) -> 'a -> t -> 'a

(** Line-oriented textual format: ["s:3"], ["b:1"], ["i:42"]. *)
val to_string : t -> string

(** Inverse of [to_string]; also accepts one trailing newline (the
    {!save} format). The parse is strict: blank lines (duplicate
    separators) and lines carrying anything beyond one canonical choice
    are rejected — a corrupted trace must fail loudly rather than replay
    a different schedule.
    @raise Failure on malformed input. *)
val of_string : string -> t

val save : path:string -> t -> unit
val load : path:string -> t

(** Mutable builder used by the runtime while an execution unfolds. *)
module Builder : sig
  type trace := t
  type t

  val create : unit -> t
  val add : t -> choice -> unit
  val length : t -> int
  val finish : t -> trace
end
