(** Scheduling strategies.

    A strategy resolves every nondeterministic choice of one execution:
    which enabled machine runs next, and the value of each [nondet] choice.
    The engine asks the factory for a fresh strategy before each execution;
    factories may carry state across executions (e.g. DFS backtracking). *)

type t = {
  name : string;
  next_schedule : enabled:int array -> n:int -> step:int -> int;
      (** pick one of [enabled.(0 .. n-1)] (machine creation indices,
          sorted ascending). Only the first [n] slots are meaningful: the
          array is a scratch buffer the runtime reuses across steps to
          keep the scheduling hot path allocation-free, so strategies
          must neither read beyond [n - 1] nor retain the array (copy the
          prefix if the choice point must be recorded, as DFS does). *)
  next_bool : step:int -> bool;
  next_int : bound:int -> step:int -> int;  (** in [\[0, bound)] *)
}

type factory = {
  factory_name : string;
  parallel_safe : bool;
      (** [fresh] carries no state across iterations, so disjoint iteration
          sets may be explored concurrently by independent factory copies
          (one per domain). Enumerative strategies (DFS, replay) are not
          parallel-safe: their factory mutates shared search state. *)
  fresh : iteration:int -> t option;
      (** strategy for execution number [iteration] (0-based), or [None]
          when the strategy has exhausted its search space *)
  feedback : (trace:Trace.t -> novelty:Coverage.novelty -> unit) option;
      (** coverage feedback channel: when present, the engine calls it
          after each execution with that execution's full choice trace and
          the per-family {!Coverage.novelty} breakdown of absorbing its
          coverage — which families (states, triples, fault points, hb
          partial orders, ...) the execution was the first to reach.
          Feedback-directed strategies (fuzz) use it to grow their corpus
          and assign mutation energy; [None] for everything else. *)
}

(** A factory that returns the same strategy forever (for stateless
    strategies built per-iteration from a seed). Stateless factories are
    [parallel_safe] by default and take no [feedback]. *)
val stateless :
  ?parallel_safe:bool ->
  ?feedback:(trace:Trace.t -> novelty:Coverage.novelty -> unit) ->
  name:string ->
  (iteration:int -> t) ->
  factory

(** [enabled_mem enabled n m]: is [m] among [enabled.(0 .. n-1)]? *)
val enabled_mem : int array -> int -> int -> bool
