let make ~iteration : Strategy.t =
  let cursor = ref iteration in
  let ints = ref 0 in
  let next_schedule ~enabled ~n ~step:_ =
    if n = 0 then invalid_arg "Rr_strategy: empty enabled set";
    let m = enabled.(!cursor mod n) in
    incr cursor;
    m
  in
  {
    name = "round-robin";
    next_schedule;
    next_bool = (fun ~step -> (step + iteration) mod 2 = 0);
    next_int =
      (fun ~bound ~step:_ ->
        incr ints;
        (!ints + iteration) mod bound);
  }

let factory () =
  Strategy.stateless ~name:"round-robin" (fun ~iteration -> make ~iteration)
