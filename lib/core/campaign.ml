(* Persistent campaign state: what a hunt knows that outlives one
   invocation. A campaign directory holds a strict, versioned metadata
   file, the merged coverage of every execution so far, the fuzz corpus,
   and the archive of found witnesses:

     DIR/campaign.meta      version, harness, seed, spent budget, witness kinds
     DIR/coverage           Coverage.to_save of the merged map
     DIR/corpus/NNNNN.trace corpus entries (Trace.save format)
     DIR/witnesses/NNNNN.trace  one witness per distinct bug kind

   Every component parses strictly (Trace.of_string / Coverage.of_save
   discipline): resuming from a corrupted campaign must fail loudly, not
   silently hunt something different. *)

type t = {
  harness : string;
  seed : int64;
  executions : int;
  coverage : Coverage.t;
  corpus : Fuzz_strategy.corpus_entry list;
  witnesses : (string * Trace.t) list;
}

let create ~harness ~seed =
  {
    harness;
    seed;
    executions = 0;
    coverage = Coverage.create ();
    corpus = [];
    witnesses = [];
  }

let advance t ~executions ~coverage ~corpus =
  { t with executions = t.executions + executions; coverage; corpus }

let record_witness t ~kind ~trace =
  if List.mem_assoc kind t.witnesses then t
  else { t with witnesses = t.witnesses @ [ (kind, trace) ] }

(* --- Meta file escaping ------------------------------------------------- *)

(* Harness names and bug-kind strings are free text; only backslash and
   newline threaten the line format. *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else
      match s.[i] with
      | '\\' ->
        if i + 1 >= n then failwith "Campaign.load: dangling escape"
        else begin
          (match s.[i + 1] with
           | '\\' -> Buffer.add_char buf '\\'
           | 'n' -> Buffer.add_char buf '\n'
           | c ->
             failwith (Printf.sprintf "Campaign.load: unknown escape \\%c" c));
          go (i + 2)
        end
      | c ->
        Buffer.add_char buf c;
        go (i + 1)
  in
  go 0;
  Buffer.contents buf

(* --- Paths -------------------------------------------------------------- *)

let meta_file dir = Filename.concat dir "campaign.meta"
let coverage_file dir = Filename.concat dir "coverage"
let corpus_dir dir = Filename.concat dir "corpus"
let witness_dir dir = Filename.concat dir "witnesses"
let numbered d i = Filename.concat d (Printf.sprintf "%05d.trace" i)

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* --- Save --------------------------------------------------------------- *)

let meta_version = "psharp-campaign:2"

(* Canonical corpus-entry metadata line: energy first, then the novelty
   tags in [Coverage.all_family_kinds] order, comma-separated — e.g.
   ["centry:13,fault,hb"]. Normalizing at render time makes the bytes
   canonical whatever order the tags arrived in. *)
let render_centry (e : Fuzz_strategy.corpus_entry) =
  let tags =
    List.filter (fun k -> List.mem k e.Fuzz_strategy.tags)
      Coverage.all_family_kinds
  in
  String.concat ","
    (string_of_int e.Fuzz_strategy.energy
    :: List.map Coverage.family_kind_to_string tags)

let to_meta t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf meta_version;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "harness:%s\n" (escape t.harness));
  Buffer.add_string buf (Printf.sprintf "seed:%Ld\n" t.seed);
  Buffer.add_string buf (Printf.sprintf "executions:%d\n" t.executions);
  Buffer.add_string buf
    (Printf.sprintf "corpus:%d\n" (List.length t.corpus));
  List.iter
    (fun e ->
      Buffer.add_string buf (Printf.sprintf "centry:%s\n" (render_centry e)))
    t.corpus;
  Buffer.add_string buf
    (Printf.sprintf "witnesses:%d\n" (List.length t.witnesses));
  List.iter
    (fun (kind, _) ->
      Buffer.add_string buf (Printf.sprintf "witness:%s\n" (escape kind)))
    t.witnesses;
  Buffer.add_string buf "end:campaign\n";
  Buffer.contents buf

let save ~dir t =
  mkdir_p dir;
  mkdir_p (corpus_dir dir);
  mkdir_p (witness_dir dir);
  Coverage.save ~path:(coverage_file dir) t.coverage;
  List.iteri
    (fun i e ->
      Trace.save ~path:(numbered (corpus_dir dir) i) e.Fuzz_strategy.trace)
    t.corpus;
  List.iteri
    (fun i (_, tr) -> Trace.save ~path:(numbered (witness_dir dir) i) tr)
    t.witnesses;
  (* The meta file is written last: it is the load-bearing manifest, so an
     interrupted save leaves the previous campaign intact rather than a
     manifest pointing at half-written state. *)
  let oc = open_out (meta_file dir) in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_meta t))

(* --- Load --------------------------------------------------------------- *)

let canonical_int s =
  match int_of_string_opt s with
  | Some n when string_of_int n = s -> Some n
  | _ -> None

let canonical_int64 s =
  match Int64.of_string_opt s with
  | Some n when Int64.to_string n = s -> Some n
  | _ -> None

let of_meta data =
  let lines = String.split_on_char '\n' data in
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  let field name = function
    | line :: rest ->
      let prefix = name ^ ":" in
      let pl = String.length prefix in
      if String.length line >= pl && String.sub line 0 pl = prefix then
        (String.sub line pl (String.length line - pl), rest)
      else
        failwith
          (Printf.sprintf "Campaign.load: expected %s line, got %S" name line)
    | [] ->
      failwith
        (Printf.sprintf "Campaign.load: truncated meta (missing %s)" name)
  in
  (match lines with
   | v :: _ when v <> meta_version ->
     failwith (Printf.sprintf "Campaign.load: unsupported version line %S" v)
   | [] -> failwith "Campaign.load: empty meta file"
   | _ -> ());
  let rest = List.tl lines in
  let harness, rest = field "harness" rest in
  let seed, rest = field "seed" rest in
  let executions, rest = field "executions" rest in
  let corpus_n, rest = field "corpus" rest in
  let seed =
    match canonical_int64 seed with
    | Some s -> s
    | None -> failwith "Campaign.load: bad seed"
  in
  let executions =
    match canonical_int executions with
    | Some n when n >= 0 -> n
    | _ -> failwith "Campaign.load: bad executions count"
  in
  let ints name s =
    match canonical_int s with
    | Some n when n >= 0 -> n
    | _ -> failwith (Printf.sprintf "Campaign.load: bad %s count" name)
  in
  let corpus_n = ints "corpus" corpus_n in
  (* Strict corpus-entry metadata: positive canonical energy, known tags,
     canonical tag order, no duplicates — anything else is corruption. *)
  let parse_centry s =
    match String.split_on_char ',' s with
    | [] -> failwith "Campaign.load: empty corpus entry"
    | e :: tags ->
      let energy =
        match canonical_int e with
        | Some n when n >= 1 -> n
        | _ ->
          failwith
            (Printf.sprintf "Campaign.load: bad corpus entry energy %S" e)
      in
      let tags =
        List.map
          (fun tag ->
            try Coverage.family_kind_of_string tag
            with Failure _ ->
              failwith
                (Printf.sprintf "Campaign.load: unknown corpus entry tag %S"
                   tag))
          tags
      in
      let canonical =
        List.filter (fun k -> List.mem k tags) Coverage.all_family_kinds
      in
      if canonical <> tags then
        failwith
          (Printf.sprintf "Campaign.load: non-canonical corpus entry tags %S"
             s);
      (energy, tags)
  in
  let rec take_centries n acc rest =
    if n = 0 then (List.rev acc, rest)
    else
      let line, rest = field "centry" rest in
      take_centries (n - 1) (parse_centry line :: acc) rest
  in
  let centries, rest = take_centries corpus_n [] rest in
  let witness_n, rest = field "witnesses" rest in
  let witness_n = ints "witnesses" witness_n in
  let rec take_witnesses n acc rest =
    if n = 0 then (List.rev acc, rest)
    else
      let kind, rest = field "witness" rest in
      take_witnesses (n - 1) (unescape kind :: acc) rest
  in
  let kinds, rest = take_witnesses witness_n [] rest in
  (match rest with
   | [ "end:campaign" ] -> ()
   | [] -> failwith "Campaign.load: truncated meta (missing end line)"
   | line :: _ ->
     failwith (Printf.sprintf "Campaign.load: unexpected meta line %S" line));
  (unescape harness, seed, executions, centries, kinds)

let read_file path =
  let ic =
    try open_in path
    with Sys_error msg -> failwith (Printf.sprintf "Campaign.load: %s" msg)
  in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      really_input_string ic len)

let load_trace path =
  try Trace.of_string (read_file path)
  with Failure msg -> failwith (Printf.sprintf "%s (in %s)" msg path)

let load ~dir =
  let harness, seed, executions, centries, kinds =
    of_meta (read_file (meta_file dir))
  in
  let coverage =
    try Coverage.of_save (read_file (coverage_file dir))
    with Failure msg ->
      failwith (Printf.sprintf "%s (in %s)" msg (coverage_file dir))
  in
  let corpus =
    List.mapi
      (fun i (energy, tags) ->
        {
          Fuzz_strategy.trace = load_trace (numbered (corpus_dir dir) i);
          energy;
          tags;
        })
      centries
  in
  let witnesses =
    List.mapi (fun i kind -> (kind, load_trace (numbered (witness_dir dir) i)))
      kinds
  in
  { harness; seed; executions; coverage; corpus; witnesses }

let load_opt ~dir =
  if Sys.file_exists (meta_file dir) then Some (load ~dir) else None

let pp fmt t =
  Format.fprintf fmt
    "campaign: harness %s, seed %Ld, %d execution(s) spent, %d corpus \
     entr%s, %d witness(es)"
    t.harness t.seed t.executions (List.length t.corpus)
    (if List.length t.corpus = 1 then "y" else "ies")
    (List.length t.witnesses)
