(** Discrete-event virtual clock (FoundationDB-style simulated time).

    The runtime owns one clock per execution when virtual time is enabled
    ({!Runtime.config}[.clock]). Machines arm {e entries} — an event to be
    delivered to a machine at an absolute virtual instant — and the
    scheduler advances time {e only when no machine is enabled}: simulated
    seconds cost nothing, so long-horizon timeout/retry/lease scenarios
    explore as cheaply as message races. Advancing is deterministic (no
    strategy draw): entries fire in (deadline, arming-order) order, so the
    same schedule trace always reproduces the same timestamps. *)

type config = {
  max_time : int;
      (** simulation horizon: virtual time never advances past this
          instant, so an execution whose only remaining work is timed
          entries beyond it ends (with liveness monitors judged) instead
          of ticking forever *)
}

(** [{ max_time = 10_000 }]. *)
val default_config : config

type entry = {
  at : int;  (** absolute virtual delivery instant *)
  seq : int;  (** arming order; tie-break among same-instant entries *)
  target : int;  (** machine creation index *)
  sender : int;  (** sending machine's creation index, [-1] unknown *)
  stamp : int;  (** happens-before message stamp, [-1] untracked *)
  event : Event.t;
}

type t

val create : unit -> t

(** Current virtual time (starts at 0, monotone). *)
val now : t -> int

(** [arm t ~after ~target ~sender ~stamp e] schedules [e] for delivery to
    [target] at [now t + after]; returns the entry's arming sequence number
    (unique within the execution, usable as a wakeup token).
    @raise Invalid_argument if [after <= 0]. *)
val arm : t -> after:int -> target:int -> sender:int -> stamp:int -> Event.t -> int

(** Instant of the earliest pending entry, if any. *)
val next_due : t -> int option

(** Advance [now] to the earliest pending entry and remove it — or return
    [None] (leaving time and entries untouched) when there is no pending
    entry at or before [horizon]. *)
val pop_due : t -> horizon:int -> entry option

(** Drop every pending entry addressed to [target] (crash semantics: a
    crashed machine's in-flight timed messages die with its inbox). *)
val cancel_target : t -> int -> unit

val is_empty : t -> bool

(** Number of pending entries (diagnostics). *)
val pending : t -> int
