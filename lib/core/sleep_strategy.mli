(** Sleep-set partial-order reduction (Godefroid), as a strategy wrapper.

    [wrap ~hb base] composes with any {e sequential} base strategy
    (random, PCT, delay-bounded, fuzz, round-robin): at every scheduling
    point the machines currently in the sleep set are pruned from the
    enabled set before the base strategy picks, so budget is not spent
    re-ordering steps the happens-before relation says commute.

    The sleep discipline is the classic one, driven dynamically by the
    {!Hb} recorder of the same execution:

    - when the base strategy picks machine [m] at a point, every other
      candidate it was offered goes to sleep — running it later, after
      [m]'s step, explores the same Mazurkiewicz trace as running it now
      unless the two steps are dependent;
    - a sleeping machine wakes as soon as a dependent step executes: its
      inbox is touched (send, crash, coalesce, delayed delivery), a
      machine it previously sent to is touched by someone else, or a
      monitor it previously notified is notified again;
    - if every enabled machine is asleep the whole set wakes (the sleep
      set is a heuristic pruner here, not an exhaustive-DPOR proof — the
      execution must go on).

    Because enabledness and wakes are derived deterministically from the
    recorded execution, a wrapped strategy with a fixed seed is as
    deterministic as its base: same seed, same schedule. Dependence is
    inferred dynamically (a pending step's future sends are unknown), so
    pruning is heuristic — the strategy-equivalence battery in
    [test/test_reduction.ml] checks no catalog bug findable without
    reduction is lost with it.

    One wrapper instance serves one execution (it consumes the [hb]
    happening feed); build a fresh one per iteration, as
    {!Engine} does. *)

(** [wrap ~hb base] is [base] with sleep-set pruning at schedule points;
    [next_bool]/[next_int] pass through unchanged. *)
val wrap : hb:Hb.t -> Strategy.t -> Strategy.t
