(** Generic linearizability checking over recorded client histories.

    This is the Wing–Gong algorithm with Lowe's refinements (WGL): a
    depth-first search over linearization orders that only ever extends
    the current order with a {e minimal} operation — one whose invocation
    precedes every remaining response — with two standard accelerations:

    - {b memoized state caching}: a (remaining-operations, model-state)
      configuration is explored at most once, which collapses the
      factorial search on histories whose operations commute;
    - {b partition by key}: when the model declares that operations on
      distinct keys are independent ([key_of]), each key's sub-history is
      checked on its own (P-compositionality) — the dominant cost then
      scales with per-key contention, not history length, keeping hunt
      budgets sub-second.

    The checker is an offline oracle: harnesses record a {!History}
    during the execution and ask for a verdict at the end, so the search
    never perturbs the schedule under test. Operations that never got a
    response ({e pending}) are treated soundly: each may have taken
    effect (it can be linearized anywhere after its invocation, with any
    result) or not (it can be left out entirely). *)

(** A sequential specification. States must be immutable values —
    [apply] returns the successor rather than mutating — because the
    search backtracks and memoizes on them. *)
type ('state, 'op, 'res) model = {
  init : 'state;
  apply : 'state -> 'op -> 'state * 'res;
      (** the sequential effect of an operation and the result it must
          have produced at its linearization point *)
  match_res : 'res -> 'res -> bool;
      (** [match_res model_res recorded_res]: does the model's result
          account for what the client observed? Usually equality; looser
          for specs with nondeterministic response detail (e.g. etags). *)
  repr_res : 'res -> string;  (** for violation messages *)
  repr_state : 'state -> string;
      (** canonical rendering of a state; memoization keys on it, so
          equal states must render equally *)
  key_of : ('op -> string) option;
      (** when [Some f], operations with distinct [f op] commute and the
          checker partitions the history per key *)
}

type verdict =
  | Linearizable of int list
      (** a witness order of operation ids. Under partitioning the
          witness is the per-key witnesses concatenated in key order —
          each internally valid, not a global interleaving. *)
  | Illegal of string
      (** deterministic human-readable violation: the deepest prefix the
          search completed and the first operation no candidate
          linearization could explain *)

val verdict_to_string : verdict -> string

(** [check model history] decides whether [history] is linearizable with
    respect to [model]. Deterministic: the same history and model always
    yield the same verdict (including the witness order and the
    violation string). *)
val check : ('state, 'op, 'res) model -> ('op, 'res) History.t -> verdict

(** [check_operations] is {!check} on an explicit operation list, for
    callers that filter or synthesize operations. *)
val check_operations :
  ('state, 'op, 'res) model -> ('op, 'res) History.operation list -> verdict
