(** A sharded KV storage node.

    Serves client operations for shards its current ring copy says it
    owns, with a durable per-shard dedup cache absorbing retransmits, and
    participates in the router-driven handoff protocol: on
    [Handoff_request] it snapshots the shard (data + dedup) to the
    destination and {e stalls} further requests for that shard — no
    committed ring names the new owner yet — until the [Release] (or the
    committed [Ring_update], whichever survives) lets it re-route them.

    Nodes are persistent machines: the [disk] record is everything that
    survives a {!Psharp.Runtime.crash}. Every applied operation is on
    disk before its reply is sent. *)

type disk

(** A freshly formatted disk holding the given initial ring. *)
val fresh_disk : Ring.t -> disk

(** The machine body; pass the same [disk] to the [~persistent] restart
    hook so crashes keep acknowledged writes. *)
val machine :
  ?bugs:Bug_flags.t ->
  name:string ->
  router:Psharp.Id.t ->
  disk:disk ->
  Psharp.Runtime.ctx ->
  unit

(** Test-facing disk peek: the shard's current kv pairs (empty when the
    node does not hold it). *)
val peek_shard : disk -> int -> (string * int) list
