(** Consistent-hash ring: shard placement over a changing node set.

    Keys hash to one of [n_shards] fixed shards; shards are placed on
    nodes by consistent hashing — every node projects [vnodes] points
    onto a hash circle, and a shard lives on the first [replicas]
    distinct nodes clockwise from its own point. Adding a node therefore
    moves only the shards whose closest points the newcomer captures,
    which is the whole point: a rebalance migrates a few shards, not the
    keyspace.

    Rings are pure immutable values carried in messages; the [version]
    tags each ring change so protocol participants can order the rings
    they hear about (stale-ring routing is one of the bug families the
    shardkv harness hunts). All placement is deterministic — same nodes,
    same placement — so replays are exact. *)

type t = {
  version : int;
  n_shards : int;
  replicas : int;
  nodes : string list;  (** membership in join order *)
}

(** [create ~n_shards ~replicas nodes] builds version-0 membership.
    @raise Invalid_argument on empty [nodes], non-positive [n_shards],
    or non-positive [replicas]. *)
val create : n_shards:int -> replicas:int -> string list -> t

(** [add_node t name] joins a node: same shards, version bumped.
    @raise Invalid_argument if [name] is already a member. *)
val add_node : t -> string -> t

(** The shard a key hashes to, in [0, n_shards). *)
val shard_of_key : t -> string -> int

(** Replica placement of a shard: [min replicas (length nodes)] distinct
    nodes clockwise from the shard's point; the head is the primary. *)
val placement : t -> int -> string list

(** [primary t shard] = [List.hd (placement t shard)]. *)
val primary : t -> int -> string

(** Shards whose {e primary} differs between two rings — the migrations a
    rebalance from [before] to [after] must perform. *)
val moved_shards : before:t -> after:t -> int list

(** ["v<version>{shard->primary,...}"], for logs and debugging. *)
val to_string : t -> string
