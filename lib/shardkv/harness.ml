module R = Psharp.Runtime

(* Cluster shape: small enough that hunt budgets bite, rich enough that a
   join moves some shards and leaves others put. *)
let initial_nodes = [ "N0"; "N1" ]
let joining_node = "N2"
let n_shards = 4
let replicas = 2

let initial_ring () =
  Ring.create ~n_shards ~replicas initial_nodes

(* The workload is phrased in terms of a key that migrates when N2 joins
   and one that stays put, computed from the ring itself so it tracks the
   hash layout rather than hard-coding it. *)
let moving_and_stable_keys () =
  let before = initial_ring () in
  let after = Ring.add_node before joining_node in
  let moved = Ring.moved_shards ~before ~after in
  let candidates = List.init 64 (fun i -> Printf.sprintf "k%d" i) in
  let find p =
    List.find (fun k -> p (Ring.shard_of_key before k)) candidates
  in
  ( find (fun s -> List.mem s moved),
    find (fun s -> not (List.mem s moved)) )

(* Two clients, three ops each, concentrated on the migrating key so the
   handoff window actually sees traffic; [Add] responses carry the new
   value, so lost or double-applied mutations contradict the history even
   without a final read. *)
let workloads () =
  let km, ks = moving_and_stable_keys () in
  [
    [ Model.Add (km, 1); Model.Put (ks, 7); Model.Add (km, 2) ];
    [ Model.Add (km, 4); Model.Get ks; Model.Get km ];
  ]

let test ?(bugs = Bug_flags.none) ?on_history ?history_out () ctx =
  Events.install_printer ();
  Psharp.Fault_driver.install ctx;
  let ring = initial_ring () in
  let all_nodes = initial_nodes @ [ joining_node ] in
  (* One disk per node, owned here: the [~persistent] hook closes over
     it, so a crash restarts the node on whatever it had durably
     written. *)
  let disks = List.map (fun n -> (n, Node.fresh_disk ring)) all_nodes in
  let router = ref None in
  let directory =
    List.map
      (fun name ->
        let disk = List.assoc name disks in
        let body () ctx =
          Node.machine ~bugs ~name ~router:(Option.get !router) ~disk ctx
        in
        (name, R.create ctx ~name ~persistent:body (body ())))
      all_nodes
  in
  let router_id =
    R.create ctx ~name:"Router" (Router.machine ~ring ~directory)
  in
  router := Some router_id;
  (* every completed operation is also a [history] coverage point, so
     coverage-directed runs can tell schedules apart by client-visible
     outcomes, not just by internal machine states *)
  let history =
    Psharp.History.create
      ~on_complete:(fun line ->
        R.history_point ctx line;
        match on_history with Some f -> f line | None -> ())
      ()
  in
  let root = R.self ctx in
  let client_names =
    List.mapi
      (fun i ops ->
        let name = Printf.sprintf "C%d" i in
        ignore
          (R.create ctx ~name
             (Client.machine ~name ~directory ~ring ~history ~ops
                ~report_to:root));
        name)
      (workloads ())
  in
  (* the rebalance races the whole client workload *)
  R.send ctx router_id (Events.Join { node = joining_node });
  List.iter
    (fun _ ->
      ignore
        (R.receive_where ctx (function
          | Events.Client_done -> true
          | _ -> false)))
    client_names;
  R.send ctx router_id Events.Shutdown;
  List.iter (fun (_, id) -> R.send ctx id Events.Shutdown) directory;
  (* saved before the verdict so a violating history is on disk too *)
  Option.iter (fun path -> Psharp.History.save history ~path) history_out;
  (* The oracle: the recorded history must be linearizable w.r.t. the
     sequential KV model. Checking is draw-free, so the verdict is a pure
     function of the schedule — witness traces replay to the exact same
     violation string. *)
  match Psharp.Linearizability.check Model.lin_model history with
  | Psharp.Linearizability.Linearizable _ -> ()
  | Psharp.Linearizability.Illegal msg ->
    R.assert_here ctx false (Printf.sprintf "shardkv: %s" msg)

let test_for_bug name ctx = test ~bugs:(Bug_flags.with_bug name) () ctx
