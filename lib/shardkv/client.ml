module R = Psharp.Runtime

(* Virtual-time units an operation waits before retransmitting.
   Deliberately below the fault substrate's default delay scale (3): a
   delayed reply can outlive the timeout, so the retransmit-vs-late-reply
   race — the one dedup migration must survive — is reachable. *)
let rpc_timeout = 2

type m = {
  name : string;
  directory : (string * Psharp.Id.t) list;
  history : (Model.op, Model.res) Psharp.History.t;
  mutable ring : Ring.t;
  mutable next_seq : int;
  mutable next_token : int;
}

(* One client operation, end to end: invoke in the history, route to the
   believed primary, chase Wrong_owner redirects (adopting any newer
   ring), retransmit on timeout with the SAME sequence number (the
   owner's dedup cache absorbs re-executions), respond in the history. *)
let run_op ctx m op =
  let id =
    Psharp.History.invoke m.history ~client:m.name ~at:(R.now ctx)
      ~repr:(Model.op_repr op) op
  in
  let seq = m.next_seq in
  m.next_seq <- seq + 1;
  let send_to_primary () =
    let shard = Ring.shard_of_key m.ring (Model.key_of op) in
    let owner = List.assoc (Ring.primary m.ring shard) m.directory in
    R.send_faulty ctx owner
      (Events.Client_req
         { client = R.self ctx; client_name = m.name; seq; op });
    let token = m.next_token in
    m.next_token <- token + 1;
    if R.clock_on ctx then
      R.send_after ctx (R.self ctx) (Events.Rpc_timeout { token })
        ~after:rpc_timeout;
    token
  in
  let rec await token =
    match
      R.receive_where ctx (function
        | Events.Client_reply { seq = s; _ } | Events.Wrong_owner { seq = s; _ }
          -> s = seq
        | Events.Rpc_timeout { token = t } -> t = token
        | _ -> false)
    with
    | Events.Client_reply { res; _ } ->
      Psharp.History.respond m.history ~id ~at:(R.now ctx)
        ~repr:(Model.res_repr res) res
    | Events.Wrong_owner { ring; _ } ->
      if ring.Ring.version > m.ring.Ring.version then begin
        m.ring <- ring;
        await (send_to_primary ())
      end
      else if R.clock_on ctx then
        (* stale redirect (the node is behind us): re-driving instantly
           would ping-pong without ever quiescing, and the node's pending
           Ring_update only fires at quiescence — park until the armed
           timeout re-sends *)
        await token
      else await (send_to_primary ())
    | Events.Rpc_timeout _ -> await (send_to_primary ())
    | _ -> assert false
  in
  await (send_to_primary ())

let machine ~name ~directory ~ring ~history ~ops ~report_to ctx =
  Events.install_printer ();
  let m = { name; directory; history; ring; next_seq = 0; next_token = 0 } in
  List.iter (run_op ctx m) ops;
  R.send ctx report_to Events.Client_done
