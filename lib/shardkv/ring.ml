type t = {
  version : int;
  n_shards : int;
  replicas : int;
  nodes : string list;
}

(* FNV-1a, 64-bit, then a murmur3-style avalanche, truncated positive:
   placement must be a deterministic pure function of the membership so
   every participant and every replay computes the same ring. The
   finalizer matters — raw FNV of short strings that differ only in the
   last character ("N1#0".."N1#7") clusters a node's vnodes into one
   contiguous arc, collapsing the circle to a single owner. *)
let fnv s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  let mix h =
    let h = Int64.logxor h (Int64.shift_right_logical h 33) in
    let h = Int64.mul h 0xff51afd7ed558ccdL in
    let h = Int64.logxor h (Int64.shift_right_logical h 33) in
    let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
    Int64.logxor h (Int64.shift_right_logical h 33)
  in
  Int64.to_int (Int64.logand (mix !h) 0x3fffffffffffffffL)

let create ~n_shards ~replicas nodes =
  if nodes = [] then invalid_arg "Ring.create: no nodes";
  if n_shards <= 0 then invalid_arg "Ring.create: n_shards must be positive";
  if replicas <= 0 then invalid_arg "Ring.create: replicas must be positive";
  { version = 0; n_shards; replicas; nodes }

let add_node t name =
  if List.mem name t.nodes then
    invalid_arg (Printf.sprintf "Ring.add_node: %s already a member" name);
  { t with version = t.version + 1; nodes = t.nodes @ [ name ] }

let shard_of_key t key = fnv key mod t.n_shards

let vnodes = 8

(* The circle: every node's [vnodes] points, sorted by position. Rebuilt
   on demand — rings are tiny and placement is queried rarely (route
   computation, not per-message hot path). *)
let circle t =
  List.concat_map
    (fun node ->
      List.init vnodes (fun i ->
          (fnv (Printf.sprintf "%s#%d" node i), node)))
    t.nodes
  |> List.sort compare

let placement t shard =
  let point = fnv (Printf.sprintf "shard%d" shard) in
  let ring = circle t in
  (* walk clockwise from the shard's point, wrapping once *)
  let after, before = List.partition (fun (p, _) -> p > point) ring in
  let walk = after @ before in
  let want = min t.replicas (List.length t.nodes) in
  let rec take acc = function
    | [] -> List.rev acc
    | (_, node) :: rest ->
      if List.mem node acc then take acc rest
      else if List.length acc + 1 = want then List.rev (node :: acc)
      else take (node :: acc) rest
  in
  take [] walk

let primary t shard = List.hd (placement t shard)

let moved_shards ~before ~after =
  List.init before.n_shards Fun.id
  |> List.filter (fun s -> primary before s <> primary after s)

let to_string t =
  Printf.sprintf "v%d{%s}" t.version
    (String.concat ","
       (List.init t.n_shards (fun s ->
            Printf.sprintf "%d->%s" s (primary t s))))
