(** Protocol events of the sharded KV harness.

    Client traffic ([Client_req]/[Client_reply]/[Wrong_owner]) and the
    router-orchestrated rebalance protocol: a [Join] makes the router
    compute the next ring and drive, per moved shard, [Handoff_request]
    (router→source) → [Shard_data] (source→dest) → [Handoff_ack]
    (dest→router) → commit, then [Release] (router→source, carrying the
    committed ring) and a [Ring_update] broadcast. [Retry_handoff] is the
    router's clocked retransmission tick; [Rpc_timeout] the clients'. *)

type Psharp.Event.t +=
  | Client_req of {
      client : Psharp.Id.t;
      client_name : string;
      seq : int;
      op : Model.op;
    }
  | Client_reply of { seq : int; res : Model.res }
  | Wrong_owner of { seq : int; ring : Ring.t }
  | Rpc_timeout of { token : int }
  | Join of { node : string }
  | Handoff_request of {
      shard : int;
      version : int;
      dest : Psharp.Id.t;
      ring : Ring.t;
    }
  | Shard_data of {
      shard : int;
      version : int;
      ring : Ring.t;  (** the ring being migrated to *)
      data : (string * int) list;
      dedup : ((string * int) * Model.res) list;
    }
  | Handoff_ack of { shard : int; version : int }
  | Release of { shard : int; version : int; ring : Ring.t }
  | Ring_update of { ring : Ring.t }
  | Retry_handoff of { shard : int; version : int }
  | Client_done
  | Shutdown

val install_printer : unit -> unit
