(** A KV client: runs a fixed operation list against the cluster,
    recording every invocation and response in a shared
    {!Psharp.History}.

    Routing: cached ring → believed primary; [Wrong_owner] redirects
    carrying a newer ring are adopted and re-driven immediately, stale
    ones wait for the retransmission timeout. Under the clock every
    attempt arms an [Rpc_timeout] and retransmits with the {e same}
    sequence number, so the owner's (migrated) dedup cache — not the
    client — is what keeps retried operations exactly-once. *)

(** Retransmission timeout in virtual-time units. *)
val rpc_timeout : int

val machine :
  name:string ->
  directory:(string * Psharp.Id.t) list ->
  ring:Ring.t ->
  history:(Model.op, Model.res) Psharp.History.t ->
  ops:Model.op list ->
  report_to:Psharp.Id.t ->
  Psharp.Runtime.ctx ->
  unit
