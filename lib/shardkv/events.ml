type Psharp.Event.t +=
  (* client <-> node *)
  | Client_req of {
      client : Psharp.Id.t;
      client_name : string;
      seq : int;
      op : Model.op;
    }
  | Client_reply of { seq : int; res : Model.res }
  | Wrong_owner of { seq : int; ring : Ring.t }
  | Rpc_timeout of { token : int }
  (* rebalance protocol *)
  | Join of { node : string }
  | Handoff_request of {
      shard : int;
      version : int;
      dest : Psharp.Id.t;
      ring : Ring.t;
    }
  | Shard_data of {
      shard : int;
      version : int;
      ring : Ring.t;  (* the ring being migrated to *)
      data : (string * int) list;
      dedup : ((string * int) * Model.res) list;
    }
  | Handoff_ack of { shard : int; version : int }
  | Release of { shard : int; version : int; ring : Ring.t }
  | Ring_update of { ring : Ring.t }
  | Retry_handoff of { shard : int; version : int }
  (* harness plumbing *)
  | Client_done
  | Shutdown

let printer = function
  | Client_req { client_name; seq; op; _ } ->
    Some (Printf.sprintf "Req(%s#%d %s)" client_name seq (Model.op_repr op))
  | Client_reply { seq; res } ->
    Some (Printf.sprintf "Reply(#%d %s)" seq (Model.res_repr res))
  | Wrong_owner { seq; ring } ->
    Some (Printf.sprintf "WrongOwner(#%d %s)" seq (Ring.to_string ring))
  | Rpc_timeout { token } -> Some (Printf.sprintf "RpcTimeout(%d)" token)
  | Join { node } -> Some (Printf.sprintf "Join(%s)" node)
  | Handoff_request { shard; version; _ } ->
    Some (Printf.sprintf "HandoffReq(shard=%d v%d)" shard version)
  | Shard_data { shard; version; data; _ } ->
    Some (Printf.sprintf "ShardData(shard=%d v%d |%d|)" shard version
            (List.length data))
  | Handoff_ack { shard; version } ->
    Some (Printf.sprintf "HandoffAck(shard=%d v%d)" shard version)
  | Release { shard; version; _ } ->
    Some (Printf.sprintf "Release(shard=%d v%d)" shard version)
  | Ring_update { ring } ->
    Some (Printf.sprintf "RingUpdate(%s)" (Ring.to_string ring))
  | Retry_handoff { shard; version } ->
    Some (Printf.sprintf "RetryHandoff(shard=%d v%d)" shard version)
  | Client_done -> Some "ClientDone"
  | Shutdown -> Some "Shutdown"
  | _ -> None

(* First executions may race across domains: CAS so the printer is
   registered exactly once. *)
let installed = Atomic.make false

let install_printer () =
  if Atomic.compare_and_set installed false true then
    Psharp.Event.register_printer printer
