type op = Get of string | Put of string * int | Add of string * int
type res = Got of int option | Put_ok | Added of int

let key_of = function Get k | Put (k, _) | Add (k, _) -> k

let op_repr = function
  | Get k -> Printf.sprintf "get %s" k
  | Put (k, v) -> Printf.sprintf "put %s %d" k v
  | Add (k, d) -> Printf.sprintf "add %s %d" k d

let res_repr = function
  | Got None -> "got -"
  | Got (Some v) -> Printf.sprintf "got %d" v
  | Put_ok -> "ok"
  | Added v -> Printf.sprintf "added %d" v

(* Sorted insertion keeps states canonical: equal stores render equally,
   which the checker's memoization relies on. *)
let rec set st k v =
  match st with
  | [] -> [ (k, v) ]
  | (k', _) :: rest when k' = k -> (k, v) :: rest
  | (k', _) :: _ when k' > k -> (k, v) :: st
  | kv :: rest -> kv :: set rest k v

let apply st = function
  | Get k -> (st, Got (List.assoc_opt k st))
  | Put (k, v) -> (set st k v, Put_ok)
  | Add (k, d) ->
    let v = (match List.assoc_opt k st with Some v -> v | None -> 0) + d in
    (set st k v, Added v)

let repr_state st =
  String.concat ";" (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) st)

let lin_model =
  {
    Psharp.Linearizability.init = [];
    apply;
    match_res = ( = );
    repr_res = res_repr;
    repr_state;
    key_of = Some key_of;
  }
