(** Seeded rebalancing defects of the sharded KV harness. Every flag off
    ([none]) is the correct protocol; each named bug arms exactly one. *)

type t = {
  migrate_drops_dedup : bool;
  stale_serve : bool;
  release_before_ack : bool;
}

val none : t
val double_apply_bug : t
val stale_serve_bug : t
val crash_loses_shard_bug : t

(** Catalog bug names, in the order of the record fields. *)
val names : string list

(** Flags arming the named catalog bug.
    @raise Invalid_argument on an unknown name. *)
val with_bug : string -> t
