module R = Psharp.Runtime

(* Virtual-time units between handoff retransmissions. Above the default
   delay-fault latency scale so a merely-slow hop usually beats the
   retry, but low enough that a crashed receiver re-drives quickly. *)
let retry_period = 4

type migration = {
  shard : int;
  source : Psharp.Id.t;
  mutable acked : bool;
}

type m = {
  directory : (string * Psharp.Id.t) list;
  mutable ring : Ring.t;
  mutable next : Ring.t option;  (* ring being migrated to, if any *)
  mutable moves : migration list;
}

let node m name = List.assoc name m.directory

let broadcast ctx m ring =
  List.iter
    (fun (_, id) -> R.send_faulty ctx id (Events.Ring_update { ring }))
    m.directory

let start_handoff ctx m next mv =
  R.send_faulty ctx mv.source
    (Events.Handoff_request
       {
         shard = mv.shard;
         version = next.Ring.version;
         dest = node m (Ring.primary next mv.shard);
         ring = next;
       });
  if R.clock_on ctx then
    R.send_after ctx (R.self ctx)
      (Events.Retry_handoff { shard = mv.shard; version = next.Ring.version })
      ~after:retry_period

let maybe_commit ctx m =
  match m.next with
  | Some next when List.for_all (fun mv -> mv.acked) m.moves ->
    m.ring <- next;
    m.next <- None;
    List.iter
      (fun mv ->
        R.send_faulty ctx mv.source
          (Events.Release
             { shard = mv.shard; version = next.Ring.version; ring = next }))
      m.moves;
    m.moves <- [];
    broadcast ctx m next;
    R.set_state_name ctx "Steady"
  | _ -> ()

let machine ~ring ~directory ctx =
  Events.install_printer ();
  let m = { directory; ring; next = None; moves = [] } in
  R.set_state_name ctx "Steady";
  let rec loop () =
    (match R.receive ctx with
     | Events.Join { node = name } ->
       (* one ring change in flight at a time; the harness drives a
          single join *)
       assert (m.next = None);
       let next = Ring.add_node m.ring name in
       let moved = Ring.moved_shards ~before:m.ring ~after:next in
       if moved = [] then begin
         m.ring <- next;
         broadcast ctx m next
       end
       else begin
         m.next <- Some next;
         m.moves <-
           List.map
             (fun shard ->
               { shard; source = node m (Ring.primary m.ring shard);
                 acked = false })
             moved;
         R.set_state_name ctx "Rebalancing";
         List.iter (start_handoff ctx m next) m.moves
       end
     | Events.Handoff_ack { shard; version } ->
       (match m.next with
        | Some next when version = next.Ring.version ->
          List.iter
            (fun mv -> if mv.shard = shard then mv.acked <- true)
            m.moves;
          maybe_commit ctx m
        | _ -> () (* late ack of a committed migration *))
     | Events.Retry_handoff { shard; version } ->
       (match m.next with
        | Some next when version = next.Ring.version ->
          (match
             List.find_opt
               (fun mv -> mv.shard = shard && not mv.acked)
               m.moves
           with
           | Some mv -> start_handoff ctx m next mv
           | None -> ())
        | _ -> ())
     | Events.Shutdown -> R.halt ctx
     | _ -> ());
    loop ()
  in
  loop ()
