(** The ring owner and rebalance orchestrator.

    Holds the authoritative ring. On [Join] it computes the next ring,
    sends each moved shard's current primary a [Handoff_request], and —
    when every move is acked — commits: adopts the new ring, [Release]s
    the sources, and broadcasts [Ring_update] to every node. Under the
    clock each in-flight handoff is retransmitted every [retry_period]
    until acked, so crashed receivers and delayed hops cannot wedge a
    rebalance. The router itself is not crashable (it models the
    control-plane service, not a storage node). *)

val retry_period : int

val machine :
  ring:Ring.t ->
  directory:(string * Psharp.Id.t) list ->
  Psharp.Runtime.ctx ->
  unit
