(** The sharded KV store's client-visible operations and its sequential
    specification — the model the {!Psharp.Linearizability} checker
    judges recorded histories against. *)

type op =
  | Get of string
  | Put of string * int
  | Add of string * int
      (** read-modify-write: add to the key (absent counts as 0) and
          return the {e new} value — chosen precisely because a lost or
          double-applied mutation shows up in the response, not just in
          later reads *)

type res = Got of int option | Put_ok | Added of int

val key_of : op -> string
val op_repr : op -> string
val res_repr : res -> string

(** The sequential step function; nodes reuse it verbatim on their
    per-shard stores, so the implementation and the checker's model can
    only disagree about {e distribution} (routing, migration, retries) —
    exactly the surface under test. *)
val apply : (string * int) list -> op -> (string * int) list * res

(** Sequential spec over a sorted association list. [key_of] is declared,
    so the checker partitions histories per key. *)
val lin_model : ((string * int) list, op, res) Psharp.Linearizability.model
