(** The sharded KV test harness — the first post-paper workload.

    A 2-node cluster (4 shards, replica factor 2) serves two concurrent
    clients while a third node joins and the router rebalances; the
    entire client-visible behavior is recorded as a {!Psharp.History} and
    judged, at the end of the execution, by the generic
    {!Psharp.Linearizability} checker against the sequential KV model —
    no bespoke spec assertions anywhere in the protocol code. A
    non-linearizable history raises an assertion failure carrying the
    checker's violation string, so hunts, shrinking, and witness replay
    treat oracle verdicts exactly like any other bug.

    Designed to run under crash+delay faults on the virtual clock: nodes
    are persistent machines with durable disks, clients retransmit on
    timeout, the router re-drives unacked handoffs. *)

(** Names of the workload's keys: [(moving, stable)] — a key whose shard
    migrates when the third node joins, and one whose shard does not. *)
val moving_and_stable_keys : unit -> string * string

(** The harness body. Every completed operation is filed as a [history]
    coverage point (rendered ["client op -> res"]); [on_history] receives
    the same lines (capture them in tests). [history_out] saves the
    recorded history to that path once the workload completes — written
    before the verdict, so a witness replay leaves the violating history
    on disk next to its trace. *)
val test :
  ?bugs:Bug_flags.t ->
  ?on_history:(string -> unit) ->
  ?history_out:string ->
  unit ->
  Psharp.Runtime.ctx ->
  unit

(** [test] with the named catalog bug's flags armed.
    @raise Invalid_argument on an unknown name. *)
val test_for_bug : string -> Psharp.Runtime.ctx -> unit
