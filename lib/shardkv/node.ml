module R = Psharp.Runtime

(* Harness-owned "disk": everything a storage node keeps across a
   crash/restart (Runtime.crash + [~persistent]). The KV store itself is
   durable — every applied operation lands here inside the handler, so a
   crash loses only the inbox and the stall queue, never acknowledged
   writes. *)
type disk = {
  mutable d_store : (int * (string * int) list) list;  (* shard -> kv *)
  mutable d_dedup : (int * ((string * int) * Model.res) list) list;
      (* shard -> (client, seq) -> cached reply; migrates with the shard
         so a retransmit that lands on the new owner is still absorbed *)
  mutable d_ring : Ring.t;
  mutable d_out : (int * int) list;  (* outbound handoffs: shard, version *)
  mutable d_installed : (int * int) list;  (* completed installs *)
}

let fresh_disk ring =
  { d_store = []; d_dedup = []; d_ring = ring; d_out = []; d_installed = [] }

let peek_shard disk shard =
  match List.assoc_opt shard disk.d_store with Some kv -> kv | None -> []

type m = {
  name : string;
  router : Psharp.Id.t;
  disk : disk;
  bugs : Bug_flags.t;
  mutable stalled : Psharp.Event.t list;  (* volatile; clients retransmit *)
}

let shard_kv m shard =
  match List.assoc_opt shard m.disk.d_store with Some kv -> kv | None -> []

let shard_dedup m shard =
  match List.assoc_opt shard m.disk.d_dedup with Some d -> d | None -> []

let set_shard m shard kv dedup =
  m.disk.d_store <- (shard, kv) :: List.remove_assoc shard m.disk.d_store;
  m.disk.d_dedup <- (shard, dedup) :: List.remove_assoc shard m.disk.d_dedup

let drop_shard m shard =
  m.disk.d_store <- List.remove_assoc shard m.disk.d_store;
  m.disk.d_dedup <- List.remove_assoc shard m.disk.d_dedup

let migrating_out m shard =
  List.exists (fun (s, _) -> s = shard) m.disk.d_out

(* Apply one client operation to its shard, durably, and cache the reply
   under (client, seq) so a retransmit never re-executes. *)
let serve ctx m ~client ~client_name ~seq ~op ~shard =
  let dedup = shard_dedup m shard in
  let res =
    match List.assoc_opt (client_name, seq) dedup with
    | Some res -> res
    | None ->
      let kv, res = Model.apply (shard_kv m shard) op in
      set_shard m shard kv (((client_name, seq), res) :: dedup);
      res
  in
  R.send_faulty ctx client (Events.Client_reply { seq; res })

let handle_client_req ctx m e =
  match e with
  | Events.Client_req { client; client_name; seq; op } ->
    let shard = Ring.shard_of_key m.disk.d_ring (Model.key_of op) in
    if m.bugs.Bug_flags.stale_serve && List.mem_assoc shard m.disk.d_store
    then
      (* the defect: "I have the data, so I own it" — bypasses both the
         migration stall and the ring ownership check, so the stale copy
         keeps absorbing traffic mid-rebalance *)
      serve ctx m ~client ~client_name ~seq ~op ~shard
    else if migrating_out m shard then
      (* correct protocol: the shard is in handoff — neither serve the
         outgoing copy nor redirect (no committed ring names the new
         owner yet); park the request until the release *)
      m.stalled <- m.stalled @ [ e ]
    else if Ring.primary m.disk.d_ring shard = m.name then
      serve ctx m ~client ~client_name ~seq ~op ~shard
    else
      R.send_faulty ctx client
        (Events.Wrong_owner { seq; ring = m.disk.d_ring })
  | _ -> ()

let reprocess_stalled ctx m =
  let parked = m.stalled in
  m.stalled <- [];
  List.iter (handle_client_req ctx m) parked

let machine ?(bugs = Bug_flags.none) ~name ~router ~disk ctx =
  Events.install_printer ();
  let m = { name; router; disk; bugs; stalled = [] } in
  R.set_state_name ctx "Serving";
  let rec loop () =
    (match R.receive ctx with
     | Events.Client_req _ as e -> handle_client_req ctx m e
     | Events.Handoff_request { shard; version; dest; ring } ->
       (* Only a migration to a future ring is live; a retry of an
          already-committed one arrives with version <= our ring. *)
       if version > m.disk.d_ring.Ring.version then begin
         if not (List.mem (shard, version) m.disk.d_out) then begin
           m.disk.d_out <- (shard, version) :: m.disk.d_out;
           R.set_state_name ctx "Migrating"
         end;
         let data = shard_kv m shard in
         let dedup =
           if m.bugs.Bug_flags.migrate_drops_dedup then []
           else shard_dedup m shard
         in
         if m.bugs.Bug_flags.release_before_ack then
           (* the defect: drop the shard as soon as the snapshot is on
              the wire — a crashed receiver plus a retried handoff then
              re-snapshots an empty shard *)
           drop_shard m shard;
         R.send_faulty ctx dest
           (Events.Shard_data { shard; version; ring; data; dedup })
       end
     | Events.Shard_data { shard; version; ring; data; dedup } ->
       (* Install once; a duplicate (handoff retry racing the ack) must
          not overwrite a copy we may already be serving writes on. *)
       if not (List.mem (shard, version) m.disk.d_installed) then begin
         set_shard m shard data dedup;
         m.disk.d_installed <- (shard, version) :: m.disk.d_installed;
         (* adopting the incoming ring here (durably) covers the corner
            where a later crash throws away the Ring_update broadcast *)
         if ring.Ring.version > m.disk.d_ring.Ring.version then
           m.disk.d_ring <- ring
       end;
       R.send_faulty ctx m.router (Events.Handoff_ack { shard; version })
     | Events.Release { shard; version; ring } ->
       if ring.Ring.version > m.disk.d_ring.Ring.version then
         m.disk.d_ring <- ring;
       m.disk.d_out <-
         List.filter (fun sv -> sv <> (shard, version)) m.disk.d_out;
       drop_shard m shard;
       if m.disk.d_out = [] then R.set_state_name ctx "Serving";
       (* parked requests re-route now that the committed ring names the
          new owner *)
       reprocess_stalled ctx m
     | Events.Ring_update { ring } ->
       if ring.Ring.version > m.disk.d_ring.Ring.version then begin
         m.disk.d_ring <- ring;
         (* a committed ring is an implicit release of any older handoff
            still marked outbound — the explicit Release may have died in
            a crashed inbox *)
         let stale, live =
           List.partition
             (fun (_, v) -> v <= ring.Ring.version)
             m.disk.d_out
         in
         List.iter (fun (s, _) -> drop_shard m s) stale;
         m.disk.d_out <- live;
         if m.disk.d_out = [] then R.set_state_name ctx "Serving";
         reprocess_stalled ctx m
       end
     | Events.Shutdown -> R.halt ctx
     | _ -> ());
    loop ()
  in
  loop ()
