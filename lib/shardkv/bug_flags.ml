(* Each flag re-introduces one real rebalancing defect; all default off,
   so [none] is the correct protocol every fixed variant runs. *)
type t = {
  migrate_drops_dedup : bool;
      (* ShardkvMigrationDoubleApply: the handoff snapshot omits the
         shard's dedup cache, so a client retransmit that lands on the
         new owner re-executes an already-applied operation *)
  stale_serve : bool;
      (* ShardkvStaleRingServe: a node serves any request for a shard
         whose data it still holds, skipping the ownership check — writes
         accepted during the migration window die with the stale copy *)
  release_before_ack : bool;
      (* ShardkvCrashLosesShard: the source deletes a shard the moment it
         sends the handoff snapshot instead of waiting for the release;
         if the receiver crashes before installing, the retried handoff
         re-sends an empty shard *)
}

let none =
  { migrate_drops_dedup = false; stale_serve = false; release_before_ack = false }

let double_apply_bug = { none with migrate_drops_dedup = true }
let stale_serve_bug = { none with stale_serve = true }
let crash_loses_shard_bug = { none with release_before_ack = true }

let names =
  [
    "ShardkvMigrationDoubleApply";
    "ShardkvStaleRingServe";
    "ShardkvCrashLosesShard";
  ]

let with_bug = function
  | "ShardkvMigrationDoubleApply" -> double_apply_bug
  | "ShardkvStaleRingServe" -> stale_serve_bug
  | "ShardkvCrashLosesShard" -> crash_loses_shard_bug
  | name -> invalid_arg (Printf.sprintf "Shardkv.Bug_flags.with_bug: %s" name)
