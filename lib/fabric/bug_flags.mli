(** Re-introducible bugs of the Service Fabric model and the CScale-like
    chained service (paper §5). *)

type t = {
  promote_during_copy : bool;
      (** the bug the paper found in the Fabric model itself: when the
          primary fails while a new secondary is still waiting for its
          state copy, the failover manager's election wrongly includes the
          copying (idle) secondary; the stale copy then completes and the
          new primary is "promoted" to active secondary, violating the
          model's promotion assertion *)
  null_deref : bool;
      (** the CScale-like NullReferenceException: the aggregation stage
          dereferences its current-batch field without checking when a
          flush overtakes the data it flushes *)
  silent_restart : bool;
      (** FabricCrashSilentRestart: a crashed replica restarts as an idle
          secondary without announcing itself to the failover manager. The
          manager keeps routing primary traffic to the stale role, the idle
          replica drops it, and the client liveness monitor stays hot
          forever. Only findable with crash faults enabled. *)
}

val none : t
val promotion_bug : t
val cscale_bug : t

(** [silent_restart] armed. *)
val restart_bug : t
