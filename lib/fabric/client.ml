module R = Psharp.Runtime

let machine ~manager ~report_to ~n_requests ctx =
  Events.install_printer ();
  Psharp.Registry.register_machine ~machine:"FabricClient"
    ~kind:Psharp.Registry.Machine ~states:1 ~handlers:1;
  for req_id = 1 to n_requests do
    let op =
      match R.nondet_int ctx 3 with
      | 0 -> Service.Increment
      | 1 -> Service.Add (1 + R.nondet_int ctx 3)
      | _ -> Service.Get "_"
    in
    R.send_faulty ctx manager
      (Events.Client_request { client = R.self ctx; req_id; op });
    let matches = function
      | Events.Client_response { req_id = id; _ } -> id = req_id
      | _ -> false
    in
    ignore (R.receive_where ctx matches)
  done;
  R.send ctx report_to Events.Client_done;
  R.halt ctx
