module Sm = Psharp.Statemachine
module R = Psharp.Runtime

type role = Primary | Active | Idle

type replica = {
  rid : int;
  machine_id : Psharp.Id.t;
  mutable role : role;
  mutable building : bool;  (** a state copy is outstanding for this replica *)
}

type pending_request = {
  client : Psharp.Id.t;
  req_id : int;
  op : Service.request;
}

type model = {
  bugs : Bug_flags.t;
  make_service : unit -> Service.t;
  mutable replicas : replica list;
  mutable next_rid : int;
  mutable pending : pending_request list;  (** forwarded, not yet served *)
}

let find_replica m rid = List.find_opt (fun r -> r.rid = rid) m.replicas

let primary m = List.find_opt (fun r -> r.role = Primary) m.replicas

let actives m = List.filter (fun r -> r.role = Active) m.replicas

let view m =
  List.map (fun r -> (r.rid, r.machine_id)) (actives m)

let send_view ctx m =
  match primary m with
  | Some p -> R.send_faulty ctx p.machine_id (Events.Update_view { actives = view m })
  | None -> ()

let launch_replica ctx m ~initial_role =
  let rid = m.next_rid in
  m.next_rid <- rid + 1;
  let manager = R.self ctx in
  let machine_id =
    R.create ctx
      ~name:(Printf.sprintf "Replica%d" rid)
      ~persistent:(fun () ->
        Replica.machine ~restarted:true
          ~silent_restart:m.bugs.Bug_flags.silent_restart ~rid ~manager
          ~make_service:m.make_service ~initial_role:`Idle)
      (Replica.machine ~rid ~manager ~make_service:m.make_service
         ~initial_role)
  in
  let role =
    match initial_role with
    | `Primary -> Primary
    | `Active -> Active
    | `Idle -> Idle
  in
  let r = { rid; machine_id; role; building = false } in
  m.replicas <- m.replicas @ [ r ];
  r

let start_build ctx m target =
  match primary m with
  | Some p ->
    target.building <- true;
    R.send_faulty ctx p.machine_id
      (Events.Build_replica
         { target_rid = target.rid; target = target.machine_id })
  | None -> ()

let forward ctx m (req : pending_request) =
  match primary m with
  | Some p ->
    R.send_faulty ctx p.machine_id
      (Events.Forward_request
         { client = req.client; req_id = req.req_id; op = req.op })
  | None -> ()  (* re-forwarded at the next election *)

let elect ctx m =
  let candidates =
    if m.bugs.Bug_flags.promote_during_copy then
      (* The buggy election also considers idle secondaries that are still
         waiting for their state copy. *)
      List.filter (fun r -> r.role = Active || r.role = Idle) m.replicas
    else actives m
  in
  match candidates with
  | [] -> ()  (* no candidate: wait for a build to complete *)
  | _ ->
    let winner = R.choose ctx candidates in
    winner.role <- Primary;
    R.notify ctx Monitors.primary_name (Events.M_became_primary winner.rid);
    R.send_faulty ctx winner.machine_id (Events.Become_primary { actives = view m });
    R.log ctx (Printf.sprintf "elected replica %d as primary" winner.rid);
    (* Re-drive requests that may have died with the old primary. *)
    List.iter (forward ctx m) m.pending

let on_replica_failed ctx m e =
  match e with
  | Events.Replica_failed { rid } ->
    let failed = find_replica m rid in
    m.replicas <- List.filter (fun r -> r.rid <> rid) m.replicas;
    (match failed with
     | Some { role = Primary; _ } -> elect ctx m
     | Some _ | None -> ());
    send_view ctx m;
    (* Launch a replacement idle secondary and build it from the (new)
       primary. *)
    let fresh = launch_replica ctx m ~initial_role:`Idle in
    start_build ctx m fresh;
    Sm.Stay
  | _ -> Sm.Unhandled

let on_copy_done ctx m e =
  match e with
  | Events.Copy_done { rid } -> begin
    match find_replica m rid with
    | None -> Sm.Stay  (* replica died since *)
    | Some r ->
      if not r.building then Sm.Stay  (* stale duplicate copy *)
      else begin
        r.building <- false;
        (* The §5 assertion: only a secondary still waiting for its copy
           may be promoted to active secondary. *)
        R.assert_here ctx (r.role <> Primary)
          (Printf.sprintf
             "replica %d was promoted to active secondary while being the \
              primary"
             rid);
        if r.role = Idle then begin
          r.role <- Active;
          R.send_faulty ctx r.machine_id Events.Promote_to_active;
          send_view ctx m;
          (* A crash can leave the cluster with no primary while every
             survivor was still building; the first completed build makes a
             candidate, so elect it now. Draw-free while a primary lives. *)
          match primary m with
          | None -> elect ctx m
          | Some _ -> ()
        end;
        Sm.Stay
      end
  end
  | _ -> Sm.Unhandled

(* A crashed replica announcing itself after restart: demote it, elect a
   replacement primary if it held that role, and rebuild it from the (new)
   primary. Unlike [Replica_failed] the machine is still alive, so it stays
   in the replica set. *)
let on_replica_crashed ctx m e =
  match e with
  | Events.Replica_crashed { rid } ->
    (match find_replica m rid with
     | None -> ()
     | Some r ->
       let was_primary = r.role = Primary in
       r.role <- Idle;
       if was_primary then begin
         R.notify ctx Monitors.primary_name (Events.M_primary_down rid);
         elect ctx m
       end;
       send_view ctx m;
       start_build ctx m r);
    Sm.Stay
  | _ -> Sm.Unhandled

let on_client_request ctx m e =
  match e with
  | Events.Client_request { client; req_id; op } ->
    let req = { client; req_id; op } in
    m.pending <- m.pending @ [ req ];
    R.notify ctx Monitors.liveness_name (Events.M_request req_id);
    forward ctx m req;
    Sm.Stay
  | _ -> Sm.Unhandled

let on_request_served ctx m e =
  match e with
  | Events.Request_served { client; req_id; response } ->
    if List.exists (fun r -> r.req_id = req_id) m.pending then begin
      m.pending <- List.filter (fun r -> r.req_id <> req_id) m.pending;
      R.notify ctx Monitors.liveness_name (Events.M_response req_id);
      R.send_faulty ctx client (Events.Client_response { req_id; response })
    end;
    Sm.Stay
  | _ -> Sm.Unhandled

let machine ~bugs ~make_service ~n_replicas ctx =
  Events.install_printer ();
  let m =
    { bugs; make_service; replicas = []; next_rid = 0; pending = [] }
  in
  (* Bootstrap: one primary, one caught-up active secondary, and the rest
     idle secondaries whose builds start immediately — a cluster still
     warming up, as after a scale-out. *)
  let p = launch_replica ctx m ~initial_role:`Primary in
  R.notify ctx Monitors.primary_name (Events.M_became_primary p.rid);
  if n_replicas > 1 then ignore (launch_replica ctx m ~initial_role:`Active);
  for _ = 3 to n_replicas do
    let idle = launch_replica ctx m ~initial_role:`Idle in
    start_build ctx m idle
  done;
  send_view ctx m;
  let on_inject_failure ctx m _e =
    (match m.replicas with
     | [] -> ()
     | replicas ->
       let victim = R.choose ctx replicas in
       R.log ctx (Printf.sprintf "injecting failure into replica %d" victim.rid);
       R.send ctx victim.machine_id Events.Fail_replica);
    Sm.Stay
  in
  let on_shutdown ctx m _e =
    List.iter
      (fun r -> R.send ctx r.machine_id Psharp.Event.Halt_event)
      m.replicas;
    Sm.Halt_machine
  in
  let running =
    Sm.state "Running"
      [
        ("Replica_failed", on_replica_failed);
        ("Replica_crashed", on_replica_crashed);
        ("Copy_done", on_copy_done);
        ("Client_request", on_client_request);
        ("Request_served", on_request_served);
        ("Inject_failure", on_inject_failure);
        ("Shutdown_cluster", on_shutdown);
      ]
  in
  Sm.run ctx ~machine:"FailoverManager" ~states:[ running ] ~init:"Running" m
