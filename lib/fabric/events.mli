(** Events of the Fabric model (paper §5). *)

type Psharp.Event.t +=
  (* failover manager -> replica *)
  | Become_primary of { actives : (int * Psharp.Id.t) list }
  | Promote_to_active
  | Build_replica of { target_rid : int; target : Psharp.Id.t }
  | Update_view of { actives : (int * Psharp.Id.t) list }
  (* replication *)
  | Replicate of { op : Service.request; seq : int }
  | Copy_state of { snapshot : string; seq : int }
  | Copy_done of { rid : int }
  (* client traffic *)
  | Client_request of { client : Psharp.Id.t; req_id : int; op : Service.request }
  | Forward_request of { client : Psharp.Id.t; req_id : int; op : Service.request }
  | Request_served of {
      client : Psharp.Id.t;
      req_id : int;
      response : Service.response;
    }
  | Client_response of { req_id : int; response : Service.response }
  (* failures *)
  | Fail_replica
  | Replica_failed of { rid : int }
  | Replica_crashed of { rid : int }
      (** a crashed replica announcing itself to the manager after restart
          (crash faults); under [Bug_flags.silent_restart] it never does *)
  (* harness control *)
  | Inject_failure
  | Shutdown_cluster
  | Client_done
  | Fab_driver_tick
  (* monitor notifications *)
  | M_became_primary of int
  | M_primary_down of int
  | M_request of int
  | M_response of int

val install_printer : unit -> unit
