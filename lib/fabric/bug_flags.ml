type t = {
  promote_during_copy : bool;
  null_deref : bool;
  silent_restart : bool;
}

let none =
  { promote_during_copy = false; null_deref = false; silent_restart = false }

let promotion_bug = { none with promote_during_copy = true }
let cscale_bug = { none with null_deref = true }

(* FabricCrashSilentRestart: a crashed replica restarts without announcing
   itself to the failover manager, which keeps routing to the stale role.
   Only findable with crash faults enabled. *)
let restart_bug = { none with silent_restart = true }
