module Sm = Psharp.Statemachine
module R = Psharp.Runtime

type model = {
  rid : int;
  manager : Psharp.Id.t;
  service : Service.t;
  mutable seq : int;  (** last applied mutation sequence number *)
  mutable actives : (int * Psharp.Id.t) list;  (** primary's replication view *)
}

let on_fail ctx m _e =
  R.notify ctx Monitors.primary_name (Events.M_primary_down m.rid);
  R.send ctx m.manager (Events.Replica_failed { rid = m.rid });
  Sm.Halt_machine

(* The model replies to a state copy from any state; the manager's
   promotion assertion is what catches copies completing against replicas
   that are no longer idle (§5). *)
let on_copy_state ctx m e =
  match e with
  | Events.Copy_state { snapshot; seq } ->
    m.service.Service.restore snapshot;
    m.seq <- seq;
    R.send_faulty ctx m.manager (Events.Copy_done { rid = m.rid });
    Sm.Stay
  | _ -> Sm.Unhandled

let on_replicate _ctx m e =
  match e with
  | Events.Replicate { op; seq } ->
    if seq > m.seq then begin
      ignore (m.service.Service.apply op);
      m.seq <- seq
    end;
    Sm.Stay
  | _ -> Sm.Unhandled

let on_become_primary _ctx m e =
  match e with
  | Events.Become_primary { actives } ->
    m.actives <- actives;
    Sm.Goto "Primary"
  | _ -> Sm.Unhandled

let on_update_view _ctx m e =
  match e with
  | Events.Update_view { actives } ->
    m.actives <- actives;
    Sm.Stay
  | _ -> Sm.Unhandled

let on_forward ctx m e =
  match e with
  | Events.Forward_request { client; req_id; op } ->
    let response = m.service.Service.apply op in
    if Service.mutates op then begin
      m.seq <- m.seq + 1;
      List.iter
        (fun (rid, id) ->
          if rid <> m.rid then
            R.send_faulty ctx id (Events.Replicate { op; seq = m.seq }))
        m.actives
    end;
    R.send_faulty ctx m.manager (Events.Request_served { client; req_id; response });
    Sm.Stay
  | _ -> Sm.Unhandled

let on_build ctx m e =
  match e with
  | Events.Build_replica { target; target_rid = _ } ->
    R.send_faulty ctx target
      (Events.Copy_state
         { snapshot = m.service.Service.snapshot (); seq = m.seq });
    Sm.Stay
  | _ -> Sm.Unhandled

let machine ?(restarted = false) ?(silent_restart = false) ~rid ~manager
    ~make_service ~initial_role ctx =
  Events.install_printer ();
  let m = { rid; manager; service = make_service (); seq = 0; actives = [] } in
  (* A replica coming back from a crash (Runtime.crash + [~persistent]) has
     lost its service state and restarts as an idle secondary. The correct
     replica announces the crash so the manager demotes it, elects a new
     primary if needed, and rebuilds it; under [silent_restart] it stays
     quiet and the manager keeps routing to the stale role. *)
  if restarted && not silent_restart then begin
    (* A crash can strike after the cluster tore itself down; with the
       manager gone there is nothing to rejoin, so exit instead of
       blocking forever (which would read as a deadlock). *)
    if R.alive ctx manager then R.send ctx manager (Events.Replica_crashed { rid })
    else R.halt ctx
  end;
  let common =
    [
      ("Fail_replica", on_fail);
      ("Copy_state", on_copy_state);
      ("Become_primary", on_become_primary);
    ]
  in
  let idle =
    (* Primary-targeted traffic can reach an idle replica only when it
       crashed out of that role and the manager does not know yet; a real
       restarted process would drop it on the floor. *)
    Sm.state "IdleSecondary"
      ~ignore_:[ "Forward_request"; "Build_replica"; "Update_view" ]
      (( "Promote_to_active", fun _ _ _ -> Sm.Goto "ActiveSecondary" )
       :: ("Replicate", on_replicate) :: common)
  in
  let active =
    Sm.state "ActiveSecondary"
      ~ignore_:[ "Promote_to_active" ]
      (("Replicate", on_replicate) :: common)
  in
  let primary =
    Sm.state "Primary"
      ~ignore_:[ "Promote_to_active"; "Replicate" ]
      (("Forward_request", on_forward)
       :: ("Build_replica", on_build)
       :: ("Update_view", on_update_view)
       :: common)
  in
  let init =
    match initial_role with
    | `Primary -> "Primary"
    | `Active -> "ActiveSecondary"
    | `Idle -> "IdleSecondary"
  in
  Sm.run ctx ~machine:"Replica" ~states:[ idle; active; primary ] ~init m
