type Psharp.Event.t +=
  | Become_primary of { actives : (int * Psharp.Id.t) list }
  | Promote_to_active
  | Build_replica of { target_rid : int; target : Psharp.Id.t }
  | Update_view of { actives : (int * Psharp.Id.t) list }
  | Replicate of { op : Service.request; seq : int }
  | Copy_state of { snapshot : string; seq : int }
  | Copy_done of { rid : int }
  | Client_request of { client : Psharp.Id.t; req_id : int; op : Service.request }
  | Forward_request of { client : Psharp.Id.t; req_id : int; op : Service.request }
  | Request_served of {
      client : Psharp.Id.t;
      req_id : int;
      response : Service.response;
    }
  | Client_response of { req_id : int; response : Service.response }
  | Fail_replica
  | Replica_failed of { rid : int }
  | Replica_crashed of { rid : int }
      (** a crashed replica announcing itself to the manager after restart *)
  | Inject_failure
  | Shutdown_cluster
  | Client_done
  | Fab_driver_tick
  | M_became_primary of int
  | M_primary_down of int
  | M_request of int
  | M_response of int

let printer = function
  | Become_primary { actives } ->
    Some
      (Printf.sprintf "BecomePrimary(actives=[%s])"
         (String.concat ";" (List.map (fun (rid, _) -> string_of_int rid) actives)))
  | Promote_to_active -> Some "PromoteToActive"
  | Build_replica { target_rid; _ } ->
    Some (Printf.sprintf "BuildReplica(rid=%d)" target_rid)
  | Replicate { op; seq } ->
    Some (Printf.sprintf "Replicate(%s, seq=%d)" (Service.request_to_string op) seq)
  | Copy_state { seq; _ } -> Some (Printf.sprintf "CopyState(seq=%d)" seq)
  | Copy_done { rid } -> Some (Printf.sprintf "CopyDone(rid=%d)" rid)
  | Client_request { req_id; op; _ } ->
    Some
      (Printf.sprintf "ClientRequest(#%d, %s)" req_id
         (Service.request_to_string op))
  | Forward_request { req_id; op; _ } ->
    Some
      (Printf.sprintf "ForwardRequest(#%d, %s)" req_id
         (Service.request_to_string op))
  | Request_served { req_id; response; _ } ->
    Some
      (Printf.sprintf "RequestServed(#%d, %s)" req_id
         (Service.response_to_string response))
  | Client_response { req_id; response } ->
    Some
      (Printf.sprintf "ClientResponse(#%d, %s)" req_id
         (Service.response_to_string response))
  | Replica_failed { rid } -> Some (Printf.sprintf "ReplicaFailed(rid=%d)" rid)
  | Replica_crashed { rid } -> Some (Printf.sprintf "ReplicaCrashed(rid=%d)" rid)
  | M_became_primary rid -> Some (Printf.sprintf "M_became_primary(%d)" rid)
  | M_primary_down rid -> Some (Printf.sprintf "M_primary_down(%d)" rid)
  | M_request id -> Some (Printf.sprintf "M_request(%d)" id)
  | M_response id -> Some (Printf.sprintf "M_response(%d)" id)
  | _ -> None

(* First executions may race across domains: CAS so the printer is
   registered exactly once. *)
let installed = Atomic.make false

let install_printer () =
  if Atomic.compare_and_set installed false true then
    Psharp.Event.register_printer printer
