module R = Psharp.Runtime

let test ?(bugs = Bug_flags.none) ?(n_replicas = 3) ?(n_requests = 3)
    ?(make_service = Service.counter) () ctx =
  Events.install_printer ();
  Psharp.Registry.register_machine ~machine:"FabricTestingDriver"
    ~kind:Psharp.Registry.Machine ~states:2 ~handlers:2;
  let manager =
    R.create ctx ~name:"FailoverManager"
      (Cluster_manager.machine ~bugs ~make_service ~n_replicas)
  in
  ignore
    (R.create ctx ~name:"Client"
       (Client.machine ~manager ~report_to:(R.self ctx) ~n_requests));
  (* No-op unless the engine runs with crash faults armed. *)
  Psharp.Fault_driver.install ctx;
  let timer =
    Psharp.Timer.create ctx ~target:(R.self ctx)
      ~tick:(fun () -> Events.Fab_driver_tick)
      ~name:"DriverTimer" ()
  in
  (* When the engine injects crash faults itself, the scenario's scripted
     Fail_replica would stack a second failure on top of them and can
     destroy every caught-up copy — a genuine unavailability that would
     read as a bug in the fixed code. Draw-free gate: fault-free runs keep
     the exact same draw sequence. *)
  let crash_armed = (R.fault_spec ctx).Psharp.Fault.crash in
  let injected = ref false in
  let rec loop () =
    match R.receive ctx with
    | Events.Fab_driver_tick ->
      if (not crash_armed) && (not !injected) && R.nondet ctx then begin
        injected := true;
        R.send ctx manager Events.Inject_failure
      end;
      loop ()
    | Events.Client_done ->
      R.send ctx timer Psharp.Timer.Timer_stop;
      R.send ctx manager Events.Shutdown_cluster
    | _ -> loop ()
  in
  loop ()

let monitors () = Monitors.all ()
