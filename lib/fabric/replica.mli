(** Replica machine (paper §5): hosts one copy of a user service and moves
    through the replica lifecycle — idle secondary (waiting for its state
    copy) → active secondary (caught up, applying replicated operations) →
    primary (serving client requests and replicating mutations).

    The lifecycle states are P# states of the machine; the failover manager
    drives transitions with [Promote_to_active] and [Become_primary]. On
    [Fail_replica] the replica notifies the manager and halts.

    [?restarted] marks a post-crash boot (the manager's [~persistent] hook
    passes it): the replica has lost its service state and comes back as an
    idle secondary, sending [Replica_crashed] to the manager — unless
    [?silent_restart] re-introduces FabricCrashSilentRestart, in which case
    it stays quiet and the manager keeps routing to its stale role. *)
val machine :
  ?restarted:bool ->
  ?silent_restart:bool ->
  rid:int ->
  manager:Psharp.Id.t ->
  make_service:(unit -> Service.t) ->
  initial_role:[ `Primary | `Active | `Idle ] ->
  Psharp.Runtime.ctx ->
  unit
