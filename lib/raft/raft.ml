module R = Psharp.Runtime
module M = Psharp.Monitor

type bugs = {
  double_vote : bool;
  stale_leader_election : bool;
}

let no_bugs = { double_vote = false; stale_leader_election = false }
let bug_double_vote = { no_bugs with double_vote = true }
let bug_stale_leader_election = { no_bugs with stale_leader_election = true }

(* Log entries are (term, command); the log is kept newest-last with
   1-based indices. *)
type entry = { term : int; cmd : int }

type Psharp.Event.t +=
  | Bind_peers of (int * Psharp.Id.t) list
  | Request_vote of {
      term : int;
      candidate : int;
      candidate_id : Psharp.Id.t;
      last_log_index : int;
      last_log_term : int;
    }
  | Vote of { term : int; granted : bool }
  | Append_entries of {
      term : int;
      leader : int;
      log : entry list;
      leader_commit : int;
    }
  | Append_ok of { term : int; follower : int; match_len : int }
  | Client_cmd of int
  | Raft_tick
  | M_leader of { term : int; server : int }
  | M_committed of { index : int; cmd : int; server : int }

let election_name = "RaftElectionSafety"
let smsafety_name = "RaftStateMachineSafety"

let election_monitor () =
  let leaders : (int, int) Hashtbl.t = Hashtbl.create 8 in
  M.make ~name:election_name ~initial:"Watching"
    ~states:[ ("Watching", M.Neutral) ]
    (fun m e ->
      match e with
      | M_leader { term; server } -> begin
        match Hashtbl.find_opt leaders term with
        | None -> Hashtbl.replace leaders term server
        | Some other ->
          M.assert_ m (other = server)
            (Printf.sprintf "two leaders in term %d: servers %d and %d" term
               other server)
      end
      | _ -> ())

let smsafety_monitor () =
  let committed : (int, int) Hashtbl.t = Hashtbl.create 8 in
  M.make ~name:smsafety_name ~initial:"Watching"
    ~states:[ ("Watching", M.Neutral) ]
    (fun m e ->
      match e with
      | M_committed { index; cmd; server } -> begin
        match Hashtbl.find_opt committed index with
        | None -> Hashtbl.replace committed index cmd
        | Some other ->
          M.assert_ m (other = cmd)
            (Printf.sprintf
               "state-machine safety violated at index %d: %d vs %d (server %d)"
               index other cmd server)
      end
      | _ -> ())

let monitors () = [ election_monitor (); smsafety_monitor () ]

(* --- Server ------------------------------------------------------------- *)

type role = Follower | Candidate | Leader

type server = {
  sid : int;
  bugs : bugs;
  mutable peers : (int * Psharp.Id.t) list;  (** includes self *)
  mutable term : int;
  mutable voted_for : int option;
  mutable log : entry list;
  mutable commit_len : int;
  mutable role : role;
  mutable heard_from_leader : bool;
  mutable votes : int;
  mutable match_lens : (int * int) list;  (** follower -> replicated length *)
}

let last_log_info s =
  match List.rev s.log with
  | [] -> (0, 0)
  | e :: _ -> (List.length s.log, e.term)

let majority s = (List.length s.peers / 2) + 1

let others s = List.filter (fun (sid, _) -> sid <> s.sid) s.peers

let notify_committed ctx s ~from_len ~to_len =
  List.iteri
    (fun i entry ->
      let index = i + 1 in
      if index > from_len && index <= to_len then
        R.notify ctx smsafety_name
          (M_committed { index; cmd = entry.cmd; server = s.sid }))
    s.log

let become_follower s ~term =
  if term > s.term then begin
    s.term <- term;
    s.voted_for <- None
  end;
  s.role <- Follower;
  s.votes <- 0

let start_election ctx s =
  s.term <- s.term + 1;
  s.role <- Candidate;
  s.voted_for <- Some s.sid;
  s.votes <- 1;
  let last_log_index, last_log_term = last_log_info s in
  List.iter
    (fun (_, peer) ->
      R.send_faulty ctx peer
        (Request_vote
           {
             term = s.term;
             candidate = s.sid;
             candidate_id = R.self ctx;
             last_log_index;
             last_log_term;
           }))
    (others s)

let broadcast_append ctx s =
  List.iter
    (fun (_, peer) ->
      R.send_faulty ctx peer
        (Append_entries
           { term = s.term; leader = s.sid; log = s.log;
             leader_commit = s.commit_len }))
    (others s)

let become_leader ctx s =
  s.role <- Leader;
  s.match_lens <- [];
  R.notify ctx election_name (M_leader { term = s.term; server = s.sid });
  R.log ctx (Printf.sprintf "server %d is leader of term %d" s.sid s.term);
  broadcast_append ctx s

(* Leader commit rule: an index is committed once a majority of servers
   store it and the entry at that index carries the current term
   (Raft §5.4.2); earlier entries commit transitively. *)
let advance_leader_commit ctx s =
  let n = List.length s.log in
  let replicated len =
    1
    + List.length (List.filter (fun (_, ml) -> ml >= len) s.match_lens)
  in
  let rec best len =
    if len <= s.commit_len then s.commit_len
    else if
      replicated len >= majority s
      && (List.nth s.log (len - 1)).term = s.term
    then len
    else best (len - 1)
  in
  let target = best n in
  if target > s.commit_len then begin
    let from_len = s.commit_len in
    s.commit_len <- target;
    notify_committed ctx s ~from_len ~to_len:target;
    broadcast_append ctx s
  end

let up_to_date s ~last_log_index ~last_log_term =
  let my_index, my_term = last_log_info s in
  last_log_term > my_term
  || (last_log_term = my_term && last_log_index >= my_index)

let handle_request_vote ctx s ~term ~candidate ~candidate_id ~last_log_index
    ~last_log_term =
  if term > s.term then become_follower s ~term;
  let fresh_vote =
    match s.voted_for with
    | None -> true
    | Some v -> v = candidate
  in
  let granted =
    term = s.term
    && (fresh_vote || s.bugs.double_vote)
    && (s.bugs.stale_leader_election
        || up_to_date s ~last_log_index ~last_log_term)
  in
  if granted then begin
    s.voted_for <- Some candidate;
    s.heard_from_leader <- true
  end;
  R.send_faulty ctx candidate_id (Vote { term; granted })

let handle_append ctx s ~term ~leader ~log ~leader_commit ~leader_id =
  if term > s.term then become_follower s ~term;
  if term = s.term then begin
    if s.role <> Leader then begin
      s.role <- Follower;
      s.heard_from_leader <- true;
      (* Full-log shipping: adopt the leader's log when it is at least as
         long as what we already replicated from this term's leader. *)
      if List.length log >= s.commit_len then begin
        s.log <- log;
        let new_commit = min leader_commit (List.length s.log) in
        if new_commit > s.commit_len then begin
          let from_len = s.commit_len in
          s.commit_len <- new_commit;
          notify_committed ctx s ~from_len ~to_len:new_commit
        end
      end;
      R.send_faulty ctx leader_id
        (Append_ok
           { term = s.term; follower = s.sid;
             match_len = List.length s.log })
    end
  end;
  ignore leader

let handle_tick ctx s =
  match s.role with
  | Leader -> broadcast_append ctx s
  | Follower ->
    if s.heard_from_leader then s.heard_from_leader <- false
    else start_election ctx s
  | Candidate -> start_election ctx s

let server_body ~bugs ~sid ctx =
  Psharp.Registry.register_machine ~machine:"RaftServer"
    ~kind:Psharp.Registry.Machine ~states:3 ~handlers:6;
  let s =
    {
      sid;
      bugs;
      peers = [];
      term = 0;
      voted_for = None;
      log = [];
      commit_len = 0;
      role = Follower;
      heard_from_leader = false;
      votes = 0;
      match_lens = [];
    }
  in
  ignore
    (Psharp.Timer.create ctx ~target:(R.self ctx)
       ~tick:(fun () -> Raft_tick)
       ~name:(Printf.sprintf "RaftTimer%d" sid)
       ());
  let peer_ids = ref [] in
  let rec loop () =
    (match R.receive ctx with
     | Bind_peers peers ->
       s.peers <- peers;
       peer_ids := List.map snd peers
     | Raft_tick -> if s.peers <> [] then handle_tick ctx s
     | Request_vote { term; candidate; candidate_id; last_log_index; last_log_term } ->
       handle_request_vote ctx s ~term ~candidate ~candidate_id
         ~last_log_index ~last_log_term
     | Vote { term; granted } ->
       if s.role = Candidate && term = s.term && granted then begin
         s.votes <- s.votes + 1;
         if s.votes >= majority s then become_leader ctx s
       end
     | Append_entries { term; leader; log; leader_commit } ->
       let leader_id =
         match List.assoc_opt leader s.peers with
         | Some id -> id
         | None -> R.self ctx
       in
       handle_append ctx s ~term ~leader ~log ~leader_commit ~leader_id
     | Append_ok { term; follower; match_len } ->
       if s.role = Leader && term = s.term then begin
         let current =
           Option.value (List.assoc_opt follower s.match_lens) ~default:0
         in
         if match_len > current then begin
           s.match_lens <-
             (follower, match_len) :: List.remove_assoc follower s.match_lens;
           advance_leader_commit ctx s
         end
       end
     | Client_cmd cmd ->
       if s.role = Leader then begin
         s.log <- s.log @ [ { term = s.term; cmd } ];
         broadcast_append ctx s;
         advance_leader_commit ctx s
       end
     | Psharp.Event.Halt_event -> R.halt ctx
     | _ -> ());
    loop ()
  in
  loop ()

(* --- Harness ------------------------------------------------------------ *)

let test ?(bugs = no_bugs) ?(n_servers = 3) ?(n_commands = 2) () ctx =
  Psharp.Registry.register_machine ~machine:"RaftHarness"
    ~kind:Psharp.Registry.Machine ~states:1 ~handlers:1;
  let servers =
    List.init n_servers (fun sid ->
        ( sid,
          R.create ctx
            ~name:(Printf.sprintf "Raft%d" sid)
            (server_body ~bugs ~sid) ))
  in
  List.iter (fun (_, id) -> R.send ctx id (Bind_peers servers)) servers;
  (* The client broadcasts each command at a nondeterministic time; only
     the current leader appends it. *)
  let timer =
    Psharp.Timer.create ctx ~target:(R.self ctx)
      ~tick:(fun () -> Raft_tick)
      ~name:"ClientTimer" ()
  in
  let rec drive sent =
    if sent >= n_commands then R.send ctx timer Psharp.Timer.Timer_stop
    else begin
      match R.receive ctx with
      | Raft_tick ->
        if R.nondet ctx then begin
          List.iter
            (fun (_, id) -> R.send ctx id (Client_cmd (1000 + sent)))
            servers;
          drive (sent + 1)
        end
        else drive sent
      | _ -> drive sent
    end
  in
  drive 0
