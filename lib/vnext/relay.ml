module R = Psharp.Runtime

let machine ~lossy ctx =
  Events.install_printer ();
  Psharp.Registry.register_machine ~machine:"NetworkEngine"
    ~kind:Psharp.Registry.Machine ~states:1 ~handlers:1;
  let rec loop () =
    (match R.receive ctx with
     | Events.Net_deliver { target; event } ->
       if (not lossy) || R.nondet ctx then R.send_faulty ctx target event
       else R.log ctx (Printf.sprintf "dropped %s" (Psharp.Event.to_string event))
     | _ -> ());
    loop ()
  in
  loop ()

let send ctx ~relay ~target e =
  R.send ctx relay (Events.Net_deliver { target; event = e })
