(** Re-introducible bugs of the vNext extent manager (paper §3.6). *)

type t = {
  sync_after_expiry : bool;
      (** ExtentNodeLivenessViolation: the manager accepts a sync report
          from an extent node it has already expired and deleted, which
          resurrects the node's extent records in the extent center. The
          replica count then looks healthy while a true replica is missing,
          so the repair loop never schedules the repair. *)
  crash_loses_directory : bool;
      (** ExtentNodeCrashLosesBinding: an extent node fails to persist its
          directory binding, so after a crash/restart it comes back in
          [Init] with an empty directory and defers every repair request
          forever — repair stalls and the repair monitor stays hot. Only
          findable with crash faults enabled. *)
}

val none : t

(** [sync_after_expiry] armed. *)
val liveness_bug : t

(** [crash_loses_directory] armed. *)
val crash_bug : t
