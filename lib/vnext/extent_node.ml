module Sm = Psharp.Statemachine
module R = Psharp.Runtime

(* Harness-owned "disk": the state an EN keeps across a crash/restart
   (Runtime.crash + [~persistent]). Written draw-free, so attaching a disk
   never perturbs a fault-free schedule. *)
type disk = {
  mutable d_directory : (int * Psharp.Id.t) list;
  mutable d_extents : int list;
  mutable d_timers_created : bool;
}

let fresh_disk () =
  { d_directory = []; d_extents = []; d_timers_created = false }

type model = {
  en : int;
  mgr : Psharp.Id.t;
  relay : Psharp.Id.t;
  center : Extent_center.t;  (* real vNext data structure, re-used (§3.2) *)
  disk : disk;
  mutable directory : (int * Psharp.Id.t) list;
}

let holds m extent = Extent_center.holds m.center ~en:m.en ~extent

(* EN-to-manager messages do not go through the modeled network engine;
   they are delivered to the ExtentManager machine directly (§3.1). A
   periodic report identical to one still queued at the manager is
   coalesced — a node does not stack up identical reports. *)
let send_report ctx m report =
  let e = Events.To_mgr report in
  let rendered = Psharp.Event.to_string e in
  R.send_unless_pending
    ~same:(fun e' -> Psharp.Event.to_string e' = rendered)
    ctx m.mgr e

let on_heartbeat_tick ctx m _e =
  send_report ctx m (Extent_manager.Heartbeat { en = m.en });
  Sm.Stay

let on_sync_tick ctx m _e =
  let extents = Extent_center.extents_of m.center ~en:m.en in
  send_report ctx m (Extent_manager.Sync_report { en = m.en; extents });
  Sm.Stay

let on_copy_request ctx m e =
  match e with
  | Events.Copy_request { extent; requester } ->
    Relay.send ctx ~relay:m.relay ~target:requester
      (Events.Copy_response { extent; ok = holds m extent });
    Sm.Stay
  | _ -> Sm.Unhandled

let on_copy_response ctx m e =
  match e with
  | Events.Copy_response { extent; ok } ->
    if ok && not (holds m extent) then begin
      Extent_center.add m.center ~en:m.en ~extent;
      (* acquired extent data reaches the disk before the ack, so a later
         crash/restart keeps it *)
      if not (List.mem extent m.disk.d_extents) then
        m.disk.d_extents <- m.disk.d_extents @ [ extent ];
      R.notify ctx Repair_monitor.name
        (Events.M_extent_repaired { en = m.en; extent })
    end;
    Sm.Stay
  | _ -> Sm.Unhandled

let on_failure ctx m _e =
  R.notify ctx Repair_monitor.name (Events.M_en_failed m.en);
  Sm.Halt_machine

let on_repair_request ctx m e =
  match e with
  | Events.Repair_request { extent; source } ->
    if not (holds m extent) then begin
      match List.assoc_opt source m.directory with
      | Some source_machine ->
        Relay.send ctx ~relay:m.relay ~target:source_machine
          (Events.Copy_request { extent; requester = R.self ctx })
      | None -> ()
    end;
    Sm.Stay
  | _ -> Sm.Unhandled

let machine ?(bugs = Bug_flags.none) ?disk ?(restarted = false) ~en ~mgr
    ~relay ~initial_extents ctx =
  Events.install_printer ();
  let disk = match disk with Some d -> d | None -> fresh_disk () in
  let m =
    { en; mgr; relay; center = Extent_center.create (); disk; directory = [] }
  in
  (* A restarted node boots from its disk; a fresh node formats the disk
     with its initial extents so a future restart sees them. *)
  let boot_extents = if restarted then disk.d_extents else initial_extents in
  List.iter (fun extent -> Extent_center.add m.center ~en ~extent)
    boot_extents;
  if not restarted then disk.d_extents <- boot_extents;
  (* The timers are separate machines and survive the node's crash; they
     keep ticking at this machine id, so a restart must not create a
     second pair. *)
  if not disk.d_timers_created then begin
    disk.d_timers_created <- true;
    ignore
      (Psharp.Timer.create ctx ~target:(R.self ctx)
         ~tick:(fun () -> Events.Heartbeat_tick)
         ~name:(Printf.sprintf "HbTimer%d" en) ());
    ignore
      (Psharp.Timer.create ctx ~target:(R.self ctx)
         ~tick:(fun () -> Events.Sync_tick)
         ~name:(Printf.sprintf "SyncTimer%d" en) ())
  end;
  (* The correct node also persisted its directory binding, so after a
     restart it resumes serving directly. Under [crash_loses_directory] the
     binding never made it to disk: the node comes back in [Init] with an
     empty directory and defers every repair request until a rebind that
     nobody will send — the stall ExtentNodeCrashLosesBinding exposes. *)
  let recovered =
    restarted
    && (not bugs.Bug_flags.crash_loses_directory)
    && disk.d_directory <> []
  in
  if recovered then m.directory <- disk.d_directory;
  let common =
    [
      ("Heartbeat_tick", on_heartbeat_tick);
      ("Sync_tick", on_sync_tick);
      ("Copy_request", on_copy_request);
      ("Copy_response", on_copy_response);
      ("Fail_en", on_failure);
    ]
  in
  let init =
    Sm.state "Init" ~defer:[ "Repair_request" ]
      (( "Bind_directory",
         fun _ctx m e ->
           match e with
           | Events.Bind_directory d ->
             m.directory <- d;
             Sm.Goto "Active"
           | _ -> Sm.Unhandled )
       :: common)
  in
  let rebind _ctx m e =
    match e with
    | Events.Bind_directory d ->
      m.directory <- d;
      Sm.Stay
    | _ -> Sm.Unhandled
  in
  let active =
    Sm.state "Active"
      (("Repair_request", on_repair_request)
       :: ("Bind_directory", rebind) :: common)
  in
  Sm.run ctx ~machine:"ExtentNode" ~states:[ init; active ]
    ~init:(if recovered then "Active" else "Init")
    m
