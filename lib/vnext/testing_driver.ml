module R = Psharp.Runtime

type scenario =
  | Initial_replication
  | Fail_and_repair

let test ?(bugs = Bug_flags.none) ?(n_nodes = 3) ?(replica_target = 3)
    ?(n_extents = 1) ?(lossy_network = false) ?(warmup_ticks = 8) ~scenario ()
    ctx =
  Events.install_printer ();
  Psharp.Registry.register_machine ~machine:"TestingDriver"
    ~kind:Psharp.Registry.Machine ~states:2 ~handlers:2;
  let relay =
    R.create ctx ~name:"Network" (Relay.machine ~lossy:lossy_network)
  in
  let mgr =
    R.create ctx ~name:"ExtentManager"
      (Mgr_machine.machine ~bugs ~replica_target ~relay)
  in
  let extents = List.init n_extents Fun.id in
  let initial_extents en =
    match scenario with
    | Initial_replication ->
      (* each extent starts with a single replica, spread over the nodes *)
      List.filter (fun extent -> extent mod n_nodes = en) extents
    | Fail_and_repair -> extents
  in
  (* One disk per node (including the fresh node Fail_and_repair adds), so
     crash faults can restart an EN from its persistent state. *)
  let disks = Array.init (n_nodes + 1) (fun _ -> Extent_node.fresh_disk ()) in
  let make_node en ~initial_extents =
    R.create ctx
      ~name:(Printf.sprintf "EN%d" en)
      ~persistent:(fun () ->
        Extent_node.machine ~bugs ~disk:disks.(en) ~restarted:true ~en ~mgr
          ~relay ~initial_extents:[])
      (Extent_node.machine ~bugs ~disk:disks.(en) ~en ~mgr ~relay
         ~initial_extents)
  in
  let nodes =
    List.init n_nodes (fun en ->
        (en, make_node en ~initial_extents:(initial_extents en)))
  in
  let bind directory =
    (* The binding is durable: it reaches every node's disk before the
       Bind_directory events go out, mirroring a config store written ahead
       of the notification fan-out. Disk writes draw nothing. *)
    List.iter
      (fun (en, _) -> disks.(en).Extent_node.d_directory <- directory)
      directory;
    R.send ctx mgr (Events.Bind_directory directory);
    List.iter
      (fun (_, node) -> R.send ctx node (Events.Bind_directory directory))
      directory
  in
  bind nodes;
  (* No-op unless the engine runs with crash faults armed. *)
  Psharp.Fault_driver.install ctx;
  let layout =
    List.map
      (fun extent ->
        ( extent,
          List.filter_map
            (fun (en, _) ->
              if List.mem extent (initial_extents en) then Some en else None)
            nodes ))
      extents
  in
  R.notify ctx Repair_monitor.name (Events.M_initial_extents layout);
  match scenario with
  | Initial_replication -> ()
  | Fail_and_repair ->
    (* Fail one EN at a nondeterministic time, then launch a fresh one. *)
    let timer =
      Psharp.Timer.create ctx ~target:(R.self ctx)
        ~tick:(fun () -> Events.Driver_tick)
        ~name:"DriverTimer" ()
    in
    (* Let the system warm up (nodes register, sync) before failing one, as
       the stress tests the paper describes fail nodes of a live system.
       The phase markers feed the coverage maps (the driver is a plain
       receive loop, not a Statemachine). *)
    R.set_state_name ctx "Warmup";
    let ticks_seen = ref 0 in
    let rec wait_for_injection () =
      match R.receive ctx with
      | Events.Driver_tick ->
        incr ticks_seen;
        if !ticks_seen > warmup_ticks && R.nondet ctx then begin
          R.set_state_name ctx "Injecting";
          let victim_en = R.nondet_int ctx n_nodes in
          let victim = List.assoc victim_en nodes in
          R.send ctx victim Events.Fail_en;
          R.log ctx (Printf.sprintf "injected failure into EN%d" victim_en);
          let fresh_en = n_nodes in
          let fresh = make_node fresh_en ~initial_extents:[] in
          bind (nodes @ [ (fresh_en, fresh) ]);
          R.send ctx timer Psharp.Timer.Timer_stop;
          R.set_state_name ctx "Repairing"
        end
        else wait_for_injection ()
      | _ -> wait_for_injection ()
    in
    wait_for_injection ()

let monitors ?(replica_target = 3) () =
  [ Repair_monitor.create ~replica_target () ]
