type Psharp.Event.t +=
  | To_mgr of Extent_manager.message
  | Net_deliver of { target : Psharp.Id.t; event : Psharp.Event.t }
  | Repair_request of { extent : int; source : int }
  | Copy_request of { extent : int; requester : Psharp.Id.t }
  | Copy_response of { extent : int; ok : bool }
  | Bind_directory of (int * Psharp.Id.t) list
  | Fail_en
  | Heartbeat_tick
  | Sync_tick
  | Expiration_tick
  | Repair_tick
  | Driver_tick
  | M_initial_extents of (int * int list) list
  | M_en_failed of int
  | M_extent_repaired of { en : int; extent : int }

let printer = function
  | To_mgr (Extent_manager.Heartbeat { en }) ->
    Some (Printf.sprintf "Heartbeat(en=%d)" en)
  | To_mgr (Extent_manager.Sync_report { en; extents }) ->
    Some
      (Printf.sprintf "SyncReport(en=%d, extents=[%s])" en
         (String.concat ";" (List.map string_of_int extents)))
  | Net_deliver { target; event } ->
    Some
      (Printf.sprintf "NetDeliver(to=%s, %s)" (Psharp.Id.to_string target)
         (Psharp.Event.to_string event))
  | Repair_request { extent; source } ->
    Some (Printf.sprintf "RepairRequest(extent=%d, source=%d)" extent source)
  | Copy_request { extent; _ } ->
    Some (Printf.sprintf "CopyRequest(extent=%d)" extent)
  | Copy_response { extent; ok } ->
    Some (Printf.sprintf "CopyResponse(extent=%d, ok=%b)" extent ok)
  | M_en_failed en -> Some (Printf.sprintf "M_en_failed(%d)" en)
  | M_extent_repaired { en; extent } ->
    Some (Printf.sprintf "M_extent_repaired(en=%d, extent=%d)" en extent)
  | M_initial_extents layout ->
    Some
      (Printf.sprintf "M_initial_extents(%d extents)" (List.length layout))
  | _ -> None

(* First executions may race across domains: CAS so the printer is
   registered exactly once. *)
let installed = Atomic.make false

let install_printer () =
  if Atomic.compare_and_set installed false true then
    Psharp.Event.register_printer printer
