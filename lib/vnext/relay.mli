(** Modeled network (paper Fig. 7).

    A relay machine stands between senders and receivers: a message sits in
    the relay's inbox until the scheduler runs the relay, so the engine can
    interleave deliveries arbitrarily with other events — this is how
    "messages delayed in the network" (§3.6) are explored systematically.
    Optionally the relay drops messages nondeterministically.

    Delivery goes through {!Psharp.Runtime.send_faulty}, so when the
    engine runs with message faults armed ([--faults drop,dup,delay])
    the final relay-to-target hop is also subject to budgeted drop,
    duplicate, and delay injection — with faults disabled it is a plain
    send and draws nothing. *)

(** [machine ~lossy ctx] forwards every [Net_deliver] envelope to its
    target; when [lossy], each message is dropped or delivered by a
    controlled nondeterministic choice. *)
val machine : lossy:bool -> Psharp.Runtime.ctx -> unit

(** [send ctx ~relay ~target e] routes [e] to [target] via the relay. *)
val send :
  Psharp.Runtime.ctx ->
  relay:Psharp.Id.t ->
  target:Psharp.Id.t ->
  Psharp.Event.t ->
  unit
