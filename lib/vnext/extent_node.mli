(** Modeled extent node (paper §3.2, Fig. 8).

    Omits most of a real EN and models only the logic needed for testing:
    periodic heartbeats and sync reports (driven by modeled timers the node
    creates for itself), repairing an extent from a source replica, and
    failure handling. Re-uses the real {!Extent_center} data structure for
    bookkeeping, as the paper's harness does. *)

(** Harness-owned persistent state: what an EN keeps across a
    {!Psharp.Runtime.crash}/restart. The testing driver allocates one disk
    per node and passes the same record to the initial body and to the
    [~persistent] restart closure. All writes are draw-free. *)
type disk = {
  mutable d_directory : (int * Psharp.Id.t) list;
      (** durable directory binding (written by the driver at bind time) *)
  mutable d_extents : int list;  (** extents whose data reached the disk *)
  mutable d_timers_created : bool;
      (** the node's timer machines survive its crash, so only the first
          boot creates them *)
}

val fresh_disk : unit -> disk

(** [machine ~en ~mgr ~relay ~initial_extents ctx] runs an EN with logical
    id [en]. The node awaits [Bind_directory] before serving repairs.

    [?disk] attaches persistent state (default: a private fresh disk).
    [?restarted] marks a post-crash boot: the node loads its extents from
    the disk, skips timer creation if the timers already exist, and — when
    the disk holds a directory binding — resumes directly in [Active].
    Under [bugs.crash_loses_directory] the binding is ignored on restart,
    so the node stalls in [Init] deferring repair requests forever. *)
val machine :
  ?bugs:Bug_flags.t ->
  ?disk:disk ->
  ?restarted:bool ->
  en:int ->
  mgr:Psharp.Id.t ->
  relay:Psharp.Id.t ->
  initial_extents:int list ->
  Psharp.Runtime.ctx ->
  unit
