type t = {
  sync_after_expiry : bool;
  crash_loses_directory : bool;
}

let none = { sync_after_expiry = false; crash_loses_directory = false }
let liveness_bug = { none with sync_after_expiry = true }
let crash_bug = { none with crash_loses_directory = true }
