(* Command-line systematic-testing runner.

   psharp_test list
   psharp_test hunt BUG [--sch random|pct|rr|dfs|delay|fuzz] [--seed N]
                        [--executions N] [--steps N] [--custom]
                        [--trace-out FILE] [--log] [--workers N]
                        [--coverage-report FILE] [--plateau N]
                        [--plateau-family FAMILY]
                        [--fuzz-energy] [--fuzz-mutate-faults]
                        [--faults drop,dup,delay,crash] [--fault-budget N]
                        [--check-lin auto|on|off] [--campaign DIR]
   psharp_test replay BUG --trace FILE [--custom] [--check-lin MODE]
                        [--history-out FILE]
   psharp_test survey BUG [--executions N]     (all distinct violations)
   psharp_test check BUG [--executions N] [--coverage-report FILE]
                         [--plateau N] [--faults ...] [--fault-budget N]
                                               (fixed variant, expect clean)
   psharp_test explore BUG [--executions N] [--faults ...] [...]
                                               (coverage, no bug expectation) *)

module E = Psharp.Engine
module Error = Psharp.Error
module Campaign = Psharp.Campaign
module Bug_catalog = Catalog.Bug_catalog

open Cmdliner

(* --- shared arguments --------------------------------------------------- *)

let bug_arg =
  let doc = "Bug identifier (see the list command)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BUG" ~doc)

let strategy_arg =
  let doc =
    "Scheduling strategy: random, pct, rr, dfs, delay, or fuzz \
     (coverage-feedback-directed)."
  in
  Arg.(
    value
    & opt string "random"
    & info [ "strategy"; "sch" ] ~docv:"NAME" ~doc)

let seed_arg =
  let doc = "Base random seed." in
  Arg.(value & opt int64 0L & info [ "seed" ] ~doc)

let executions_arg =
  let doc = "Maximum number of executions to explore." in
  Arg.(value & opt int 10_000 & info [ "executions" ] ~doc)

let workers_arg =
  let doc =
    "Explore with $(docv) parallel worker domains (0 = one per core). \
     Parallel runs cover the same schedules as sequential runs; stateful \
     strategies (dfs) fall back to sequential."
  in
  let nonneg =
    let parse s =
      match Arg.conv_parser Arg.int s with
      | Ok n when n >= 0 -> Ok n
      | Ok _ -> Error (`Msg "worker count must be >= 0")
      | Error _ as e -> e
    in
    Arg.conv (parse, Arg.conv_printer Arg.int)
  in
  Arg.(value & opt nonneg 1 & info [ "workers" ] ~docv:"N" ~doc)

let steps_arg =
  let doc = "Step bound per execution (0 = the bug's default)." in
  Arg.(value & opt int 0 & info [ "steps" ] ~doc)

let custom_arg =
  let doc = "Use the bug's custom (pinned-input) test case if it has one." in
  Arg.(value & flag & info [ "custom" ] ~doc)

let trace_out_arg =
  let doc = "Write the buggy schedule trace to $(docv)." in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let trace_in_arg =
  let doc = "Schedule trace to replay." in
  Arg.(required & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let log_arg =
  let doc = "Print the global-order trace log of the buggy execution." in
  Arg.(value & flag & info [ "log" ] ~doc)

let shrink_arg =
  let doc = "Delta-debug the witness trace down to a shorter one." in
  Arg.(value & flag & info [ "shrink" ] ~doc)

let coverage_report_arg =
  let doc =
    "Collect execution coverage (machine states, delivered event types, \
     transition triples, nondet branch outcomes, unique schedules) and \
     write the full JSON report to $(docv); a human-readable summary is \
     printed as well."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "coverage-report" ] ~docv:"FILE" ~doc)

let plateau_arg =
  let doc =
    "Stop after $(docv) consecutive executions that uncover no new \
     coverage point (implies coverage collection). Raw schedule and \
     partial-order fingerprints never count as new points."
  in
  Arg.(value & opt (some int) None & info [ "plateau" ] ~docv:"N" ~doc)

let plateau_family_arg =
  let doc =
    "Key the --plateau counter on a single coverage family (state, event, \
     triple, branch, fault, history, or hb) instead of any-family gain: \
     e.g. --plateau-family hb stops once no new canonical partial orders \
     appear, even while coarser families still trickle in. Requires \
     --plateau."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "plateau-family" ] ~docv:"FAMILY" ~doc)

(* --plateau-family is a refinement of --plateau: alone it would silently
   do nothing, so reject the combination loudly. *)
let parse_plateau_family ~plateau = function
  | None -> Ok None
  | Some s ->
    if plateau = None then Error "--plateau-family requires --plateau"
    else begin
      match Psharp.Coverage.family_kind_of_string s with
      | fam -> Ok (Some fam)
      | exception Failure _ ->
        Error (Printf.sprintf "unknown coverage family %s" s)
    end

let fuzz_energy_arg =
  let doc =
    "With --sch fuzz: energy-scheduled corpus selection — entries that \
     discovered new partial orders or fault points get proportionally \
     more mutation attempts, and a new partial order alone admits a \
     trace to the corpus."
  in
  Arg.(value & flag & info [ "fuzz-energy" ] ~doc)

let fuzz_mutate_faults_arg =
  let doc =
    "With --sch fuzz: allow mutants to perturb recorded fault draws \
     (crash instants, delay latencies, drop/dup booleans) while keeping \
     the scheduling spine intact."
  in
  Arg.(value & flag & info [ "fuzz-mutate-faults" ] ~doc)

let faults_arg =
  let doc =
    "Comma-separated fault kinds to inject (drop, dup, delay, crash), \
     e.g. --faults drop,crash. Defaults to the bug's own fault spec, so \
     fault-only catalog bugs hunt correctly with no flags; pass --faults \
     none to disable even those."
  in
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"KINDS" ~doc)

let reduce_arg =
  let doc =
    "Happens-before instrumentation: none (default), track (record each \
     execution's canonical partial order into coverage without changing \
     the schedule), or sleep (sleep-set partial-order reduction wrapped \
     around the base strategy). Sequential-only; with --workers the run \
     falls back to one worker."
  in
  Arg.(value & opt string "none" & info [ "reduce" ] ~docv:"MODE" ~doc)

let parse_reduce = function
  | "none" -> Ok E.No_reduction
  | "track" -> Ok E.Hb_track
  | "sleep" -> Ok E.Sleep_sets
  | other -> Error (Printf.sprintf "unknown reduction mode %s" other)

let fault_budget_arg =
  let doc = "Maximum faults injected per execution (with --faults)." in
  Arg.(value & opt int 1 & info [ "fault-budget" ] ~docv:"N" ~doc)

let campaign_arg =
  let doc =
    "Persist hunt state across invocations in campaign directory $(docv): \
     merged coverage, the fuzz corpus (with --sch fuzz) and one witness \
     per bug kind found. A later hunt with the same $(docv) resumes where \
     the previous one stopped — fresh iterations, novelty judged against \
     everything already explored, corpus carried over — so \
     executions-to-first-bug drops across invocations. The stored seed \
     and harness bind the campaign; a mismatching harness is rejected."
  in
  Arg.(value & opt (some string) None & info [ "campaign" ] ~docv:"DIR" ~doc)

let clock_arg =
  let doc =
    "Virtual-time mode: auto (the bug's own clock config — timeout/retry \
     catalog bugs hunt under simulated time with no flags; default), on \
     (enable with the default horizon), off (disable even for clock \
     bugs), or a positive integer simulation horizon in virtual-time \
     units."
  in
  Arg.(value & opt string "auto" & info [ "clock" ] ~docv:"MODE" ~doc)

(* Mirrors [fault_spec_of]: the bug's own clock config is the default and
   an explicit --clock overrides it. *)
let clock_spec_of entry = function
  | "auto" -> Ok entry.Bug_catalog.clock
  | "on" -> Ok (Some Psharp.Clock.default_config)
  | "off" -> Ok None
  | s -> begin
    match int_of_string_opt s with
    | Some horizon when horizon > 0 -> Ok (Some { Psharp.Clock.max_time = horizon })
    | Some _ -> Error "clock horizon must be positive"
    | None -> Error (Printf.sprintf "unknown clock mode %s" s)
  end

(* The bug's own spec is the default, so `hunt ExtentNodeCrashLosesBinding`
   injects crashes out of the box; an explicit --faults overrides it. *)
let fault_spec_of entry ~faults ~fault_budget =
  match faults with
  | None -> Ok entry.Bug_catalog.faults
  | Some "none" -> Ok Psharp.Fault.none
  | Some kinds -> begin
    match Psharp.Fault.parse kinds with
    | Ok spec -> Ok { spec with Psharp.Fault.budget = fault_budget }
    | Error _ as e -> e
  end

let parse_strategy = function
  | "random" -> Ok E.Random
  | "pct" -> Ok (E.Pct { change_points = 2 })
  | "rr" -> Ok E.Round_robin
  | "dfs" -> Ok (E.Dfs { max_depth = 200; int_cap = 3 })
  | "delay" -> Ok (E.Delay_bounded { delays = 2 })
  | "fuzz" -> Ok (E.Fuzz { corpus_cap = 32 })
  | other -> Error (Printf.sprintf "unknown strategy %s" other)

let config_of ?(workers = 1) ?(coverage = false) ?plateau ?plateau_family
    ?(faults = Psharp.Fault.none) ?(reduce = E.No_reduction) ?clock ?scenario
    ?(fuzz_energy = false) ?(fuzz_mutate_faults = false) entry ~strategy ~seed
    ~executions ~steps ~log =
  {
    E.default_config with
    strategy;
    seed;
    max_executions = executions;
    max_steps = (if steps > 0 then steps else entry.Bug_catalog.max_steps);
    collect_log_on_bug = log;
    workers;
    collect_coverage = coverage;
    coverage_plateau = plateau;
    plateau_family = Option.join plateau_family;
    faults;
    reduce;
    clock = Option.join clock;
    scenario;
    fuzz_energy;
    fuzz_mutate_faults;
  }

let scenario_arg =
  let doc =
    "Constrain the run with catalog scenario $(docv) (see `scenario \
     list'): the base strategy keeps driving the search, but the scenario \
     wrapper prunes scheduling picks and forces fault draws so every \
     admitted schedule satisfies the scenario's clauses. The bug's fault \
     spec is armed with whatever the clauses need."
  in
  Arg.(value & opt (some string) None & info [ "scenario" ] ~docv:"NAME" ~doc)

(* Resolve --scenario and arm the fault spec with what its clauses need
   (kinds, budget, max latency). Arming happens exactly once, here. *)
let scenario_spec_of name fault_spec =
  match name with
  | None -> Ok (None, fault_spec)
  | Some n -> begin
    match Catalog.Scenario_catalog.find n with
    | exception Invalid_argument msg -> Error msg
    | e ->
      let s = e.Catalog.Scenario_catalog.scenario in
      Ok (Some s, Psharp.Scenario.arm s fault_spec)
  end

let harness_of entry ~custom =
  if custom then
    match entry.Bug_catalog.custom_harness with
    | Some h -> Ok h
    | None ->
      Error (Printf.sprintf "%s has no custom test case" entry.Bug_catalog.name)
  else Ok entry.Bug_catalog.harness

let check_lin_arg =
  let doc =
    "Which oracle judges the run: auto (the bug's own — shardkv harnesses \
     are judged by the generic linearizability checker natively, the rest \
     by their legacy asserts; default), on (the generic checker over the \
     recorded client history, for harnesses that record one), or off (the \
     legacy oracle only; rejected for harnesses that have no other)."
  in
  Arg.(value & opt string "auto" & info [ "check-lin" ] ~docv:"MODE" ~doc)

(* Mirrors [clock_spec_of]: the entry's own oracle is the default and an
   explicit --check-lin overrides it. Draw-identical harnesses, so a mode
   switch never changes the schedule space being searched. *)
let lin_harness_of entry ~custom ~check_lin ~fixed =
  let default () =
    if fixed then Ok entry.Bug_catalog.fixed_harness
    else harness_of entry ~custom
  in
  match check_lin with
  | "auto" -> default ()
  | "on" ->
    if custom then Error "--check-lin on is not available with --custom"
    else begin
      match entry.Bug_catalog.lin with
      | Some l ->
        Ok
          ((if fixed then l.Bug_catalog.lin_fixed
            else l.Bug_catalog.lin_harness)
             ~history_out:None)
      | None ->
        Error
          (Printf.sprintf
             "%s records no client history; the generic checker does not \
              apply"
             entry.Bug_catalog.name)
    end
  | "off" -> begin
    match entry.Bug_catalog.lin with
    | Some l when l.Bug_catalog.lin_default ->
      Error
        (Printf.sprintf
           "%s is judged only by the generic linearizability oracle; \
            --check-lin off is not available"
           entry.Bug_catalog.name)
    | _ -> default ()
  end
  | other -> Error (Printf.sprintf "unknown check-lin mode %s" other)

(* --- list --------------------------------------------------------------- *)

let list_cmd =
  let run () =
    Printf.printf "%-3s %-40s %-8s %-7s %s\n" "CS" "Bug" "Kind" "Table2"
      "Custom case";
    List.iter
      (fun e ->
        Printf.printf "%-3s %-40s %-8s %-7s %s\n"
          (Bug_catalog.case_study_to_string e.Bug_catalog.case_study)
          e.Bug_catalog.name
          (match e.Bug_catalog.kind with
           | `Safety -> "safety"
           | `Liveness -> "liveness")
          (if e.Bug_catalog.in_table2 then "yes" else "no")
          (if e.Bug_catalog.custom_harness <> None then "yes" else "no"))
      Bug_catalog.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the re-introducible bugs.")
    Term.(const run $ const ())

(* --- hunt --------------------------------------------------------------- *)

let emit_coverage_report ~path (stats : E.stats) =
  match stats.E.coverage with
  | None -> ()
  | Some cov ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Psharp.Coverage.to_json cov));
    Format.printf "%a@." Psharp.Coverage.pp_table cov;
    Format.printf "coverage report written to %s@." path

(* Load (or initialize) the campaign bound to [dir], strictly: a
   corrupted campaign or one belonging to a different harness is an
   error, not a silent fresh start. *)
let campaign_state_of ~dir ~bug ~seed =
  match Campaign.load_opt ~dir with
  | exception Failure msg -> Error msg
  | None -> Ok (Campaign.create ~harness:bug ~seed)
  | Some c ->
    if c.Campaign.harness <> bug then
      Error
        (Printf.sprintf "campaign in %s hunts %s, not %s" dir
           c.Campaign.harness bug)
    else begin
      if c.Campaign.seed <> seed then
        Format.printf "campaign seed %Ld overrides --seed %Ld@."
          c.Campaign.seed seed;
      Format.printf "resuming %a@." Campaign.pp c;
      Ok c
    end

let hunt bug strategy seed executions steps custom trace_out log shrink
    workers coverage_report plateau plateau_family faults fault_budget reduce
    clock check_lin campaign fuzz_energy fuzz_mutate_faults scenario_name =
  match
    Result.bind (parse_strategy strategy) (fun s ->
        Result.bind (parse_reduce reduce) (fun r ->
            Result.map
              (fun pf -> (s, r, pf))
              (parse_plateau_family ~plateau plateau_family)))
  with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok (strategy, reduce, plateau_family) -> begin
    match Bug_catalog.find bug with
    | exception Invalid_argument msg ->
      prerr_endline msg;
      2
    | entry -> begin
      match
        Result.bind (fault_spec_of entry ~faults ~fault_budget) (fun spec ->
            Result.bind (scenario_spec_of scenario_name spec)
              (fun (scen, spec) ->
                Result.bind (clock_spec_of entry clock) (fun ck ->
                    Result.bind
                      (lin_harness_of entry ~custom ~check_lin ~fixed:false)
                      (fun h ->
                        match campaign with
                        | None -> Ok (scen, spec, ck, h, None)
                        | Some dir ->
                          Result.map
                            (fun c -> (scen, spec, ck, h, Some (dir, c)))
                            (campaign_state_of ~dir ~bug ~seed)))))
      with
      | Error msg ->
        prerr_endline msg;
        2
      | Ok (scenario, fault_spec, clock_spec, harness, campaign_state) -> begin
        let config =
          config_of ~workers
            ~coverage:(coverage_report <> None)
            ?plateau ~plateau_family ~faults:fault_spec ~reduce
            ~clock:clock_spec ?scenario ~fuzz_energy ~fuzz_mutate_faults entry
            ~strategy ~seed ~executions ~steps ~log
        in
        (* With --sch fuzz the campaign's corpus flows through an Exchange
           hub: the run's novel schedules collect there and the snapshot
           below becomes the corpus of the next invocation. *)
        let exchange =
          match (campaign_state, strategy) with
          | Some (_, c), E.Fuzz _ ->
            Some (Psharp.Fuzz_strategy.Exchange.of_entries c.Campaign.corpus)
          | _ -> None
        in
        let config =
          match campaign_state with
          | None -> config
          | Some (_, c) ->
            {
              config with
              E.seed = c.Campaign.seed;
              start_iteration = c.Campaign.executions;
              prior_coverage = Some c.Campaign.coverage;
              collect_coverage = true;
              (* the corpus reaches the workers through the hub when one
                 exists; passing it twice would double-fill each corpus *)
              fuzz_initial =
                (if Option.is_none exchange then c.Campaign.corpus else []);
              fuzz_exchange = exchange;
            }
        in
        let finish_campaign ?witness (stats : E.stats) =
          match campaign_state with
          | None -> ()
          | Some (dir, c) ->
            let coverage =
              match stats.E.coverage with
              | Some cov -> cov
              | None -> c.Campaign.coverage
            in
            let corpus =
              match exchange with
              | Some e ->
                (* no silent caps: say what the hub accepted and dropped *)
                let st = Psharp.Fuzz_strategy.Exchange.stats e in
                Format.printf
                  "exchange: %d corpus entr%s pooled, %d duplicate push(es) \
                   dropped, %d push(es) dropped at cap@."
                  st.Psharp.Fuzz_strategy.Exchange.accepted
                  (if st.Psharp.Fuzz_strategy.Exchange.accepted = 1 then "y"
                   else "ies")
                  st.Psharp.Fuzz_strategy.Exchange.dropped_dup
                  st.Psharp.Fuzz_strategy.Exchange.dropped_cap;
                Psharp.Fuzz_strategy.Exchange.snapshot e
              | None -> c.Campaign.corpus
            in
            let c =
              Campaign.advance c ~executions:stats.E.executions ~coverage
                ~corpus
            in
            let c =
              match witness with
              | Some (kind, trace) -> Campaign.record_witness c ~kind ~trace
              | None -> c
            in
            Campaign.save ~dir c;
            Format.printf "%a@.campaign saved to %s@." Campaign.pp c dir
        in
        let finish_coverage stats =
          match coverage_report with
          | Some path -> emit_coverage_report ~path stats
          | None -> ()
        in
        match E.run ~monitors:entry.Bug_catalog.monitors config harness with
        | E.Bug_found (first_report, stats) ->
          let report =
            if shrink then begin
              Format.printf "shrinking the %d-choice witness...@."
                (Psharp.Trace.length first_report.Error.trace);
              Psharp.Shrinker.shrink ~monitors:entry.Bug_catalog.monitors
                config first_report harness
            end
            else first_report
          in
          Format.printf "%a@." Error.pp_report report;
          Format.printf
            "found after %d execution(s) in %.2fs (%d total steps)@."
            stats.E.executions stats.E.elapsed stats.E.total_steps;
          if stats.E.elapsed > 0. then
            Format.printf "throughput: %.0f executions/sec, %.0f steps/sec@."
              (float_of_int stats.E.executions /. stats.E.elapsed)
              (float_of_int stats.E.total_steps /. stats.E.elapsed);
          if log then
            List.iter (fun line -> Format.printf "%s@." line) report.Error.log;
          (match trace_out with
           | Some path ->
             Psharp.Trace.save ~path report.Error.trace;
             Format.printf "trace written to %s@." path
           | None -> ());
          finish_coverage stats;
          finish_campaign
            ~witness:(Error.kind_to_string report.Error.kind, report.Error.trace)
            stats;
          0
        | E.No_bug stats ->
          Format.printf "no bug found in %d execution(s) (%.2fs%s%s%s)@."
            stats.E.executions stats.E.elapsed
            (if stats.E.search_exhausted then ", search exhausted" else "")
            (if stats.E.plateaued then ", coverage plateau" else "")
            (if stats.E.timed_out then ", stopped at the time budget" else "");
          if stats.E.elapsed > 0. then
            Format.printf "throughput: %.0f executions/sec, %.0f steps/sec@."
              (float_of_int stats.E.executions /. stats.E.elapsed)
              (float_of_int stats.E.total_steps /. stats.E.elapsed);
          finish_coverage stats;
          finish_campaign stats;
          1
      end
    end
  end

let hunt_cmd =
  Cmd.v
    (Cmd.info "hunt" ~doc:"Systematically search for a catalog bug.")
    Term.(
      const hunt $ bug_arg $ strategy_arg $ seed_arg $ executions_arg
      $ steps_arg $ custom_arg $ trace_out_arg $ log_arg $ shrink_arg
      $ workers_arg $ coverage_report_arg $ plateau_arg $ plateau_family_arg
      $ faults_arg $ fault_budget_arg $ reduce_arg $ clock_arg $ check_lin_arg
      $ campaign_arg $ fuzz_energy_arg $ fuzz_mutate_faults_arg
      $ scenario_arg)

(* --- replay ------------------------------------------------------------- *)

let replay bug trace_file custom log check_lin history_out scenario_name =
  match Bug_catalog.find bug with
  | exception Invalid_argument msg ->
    prerr_endline msg;
    2
  | entry -> begin
    let resolved =
      match history_out with
      | None -> lin_harness_of entry ~custom ~check_lin ~fixed:false
      | Some path ->
        (* dumping the recorded history requires the history-recording
           harness; for entries whose default oracle doesn't record one,
           the trace must have been hunted under --check-lin on, and the
           replay must say so too (the two oracles draw identically, but
           an abort at a mid-run legacy assert would leave no history
           file to write) *)
        if custom then Error "--history-out is not available with --custom"
        else begin
          match entry.Bug_catalog.lin with
          | Some l when l.Bug_catalog.lin_default || check_lin = "on" ->
            Ok (l.Bug_catalog.lin_harness ~history_out:(Some path))
          | Some _ ->
            Error
              (Printf.sprintf
                 "--history-out needs --check-lin on for %s (its default \
                  oracle does not record histories)"
                 entry.Bug_catalog.name)
          | None ->
            Error
              (Printf.sprintf "%s records no client history"
                 entry.Bug_catalog.name)
        end
    in
    match resolved with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok harness ->
      match scenario_spec_of scenario_name entry.Bug_catalog.faults with
      | Error msg ->
        prerr_endline msg;
        2
      | Ok (scenario, fault_spec) ->
      let trace = Psharp.Trace.load ~path:trace_file in
      (* The bug's own fault spec and clock config: a fault-found trace
         replays its recorded injection draws only under the spec that
         produced them, and a clock-found trace only under the same time
         model. A scenario-found trace additionally needs the same
         --scenario, so the fault driver takes its steered branch and the
         armed spec matches the recorded draw vocabulary. *)
      let config =
        config_of ~faults:fault_spec ~clock:entry.Bug_catalog.clock ?scenario
          entry ~strategy:E.Random ~seed:0L ~executions:1 ~steps:0 ~log:true
      in
      let result =
        E.replay ~monitors:entry.Bug_catalog.monitors config trace harness
      in
      let note_history () =
        match history_out with
        | Some path when Sys.file_exists path ->
          Format.printf "history written to %s@." path
        | Some path ->
          Format.printf
            "no history written to %s (the replay aborted before the \
             workload completed)@."
            path
        | None -> ()
      in
      (match result.Psharp.Runtime.bug with
       | Some kind ->
         Format.printf "replay reproduced: %s at step %d@."
           (Error.kind_to_string kind) result.Psharp.Runtime.bug_step;
         if log then
           List.iter
             (fun line -> Format.printf "%s@." line)
             result.Psharp.Runtime.log;
         note_history ();
         0
       | None ->
         Format.printf "replay completed without a bug (stale trace?)@.";
         note_history ();
         1)
  end

let history_out_arg =
  let doc =
    "Write the client operation history recorded during the replay to \
     $(docv) (harnesses with a generic-checker oracle only; implies the \
     history-recording harness)."
  in
  Arg.(
    value & opt (some string) None & info [ "history-out" ] ~docv:"FILE" ~doc)

let replay_cmd =
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay a recorded buggy schedule.")
    Term.(
      const replay $ bug_arg $ trace_in_arg $ custom_arg $ log_arg
      $ check_lin_arg $ history_out_arg $ scenario_arg)

(* --- survey --------------------------------------------------------------- *)

let survey bug strategy seed executions custom workers faults fault_budget
    clock =
  match parse_strategy strategy with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok strategy -> begin
    match Bug_catalog.find bug with
    | exception Invalid_argument msg ->
      prerr_endline msg;
      2
    | entry -> begin
      match
        Result.bind (fault_spec_of entry ~faults ~fault_budget) (fun spec ->
            Result.bind (clock_spec_of entry clock) (fun ck ->
                Result.map (fun h -> (spec, ck, h)) (harness_of entry ~custom)))
      with
      | Error msg ->
        prerr_endline msg;
        2
      | Ok (fault_spec, clock_spec, harness) ->
        let config =
          config_of ~workers ~faults:fault_spec ~clock:clock_spec entry
            ~strategy ~seed ~executions ~steps:0 ~log:false
        in
        let found =
          E.survey ~monitors:entry.Bug_catalog.monitors config harness
        in
        if found = [] then begin
          Format.printf "no violations in %d executions@." executions;
          1
        end
        else begin
          Format.printf "%d distinct violation(s) over %d executions:@."
            (List.length found) executions;
          List.iter
            (fun (report, n) ->
              Format.printf "  %6d x  %s (first witness: %d choices)@." n
                (Error.kind_to_string report.Error.kind)
                (Psharp.Trace.length report.Error.trace))
            found;
          0
        end
    end
  end

let survey_cmd =
  Cmd.v
    (Cmd.info "survey"
       ~doc:
         "Explore the whole execution budget and report every distinct \
          violation with its frequency.")
    Term.(
      const survey $ bug_arg $ strategy_arg $ seed_arg $ executions_arg
      $ custom_arg $ workers_arg $ faults_arg $ fault_budget_arg $ clock_arg)

(* --- check (fixed variant) ---------------------------------------------- *)

let check bug seed executions coverage_report plateau faults fault_budget
    reduce clock check_lin =
  match parse_reduce reduce with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok reduce -> begin
    match Bug_catalog.find bug with
  | exception Invalid_argument msg ->
    prerr_endline msg;
    2
  | entry -> begin
    match
      Result.bind (fault_spec_of entry ~faults ~fault_budget) (fun spec ->
          Result.bind (clock_spec_of entry clock) (fun ck ->
              Result.map
                (fun h -> (spec, ck, h))
                (lin_harness_of entry ~custom:false ~check_lin ~fixed:true)))
    with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok (fault_spec, clock_spec, fixed_harness) -> begin
    let config =
      config_of
        ~coverage:(coverage_report <> None)
        ?plateau ~faults:fault_spec ~reduce ~clock:clock_spec entry
        ~strategy:E.Random ~seed ~executions ~steps:0 ~log:true
    in
    let finish_coverage stats =
      match coverage_report with
      | Some path -> emit_coverage_report ~path stats
      | None -> ()
    in
    match E.run ~monitors:entry.Bug_catalog.monitors config fixed_harness with
    | E.No_bug stats ->
      Format.printf "fixed variant clean over %d execution(s) (%.2fs%s)@."
        stats.E.executions stats.E.elapsed
        (if stats.E.plateaued then ", coverage plateau" else "");
      finish_coverage stats;
      0
    | E.Bug_found (report, stats) ->
      Format.printf "UNEXPECTED bug in fixed variant after %d execution(s):@.%a@."
        stats.E.executions Error.pp_report report;
      List.iter (fun line -> Format.printf "%s@." line) report.Error.log;
      finish_coverage stats;
      1
    end
  end
  end

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:"Run the bug's fixed variant and expect no violations.")
    Term.(
      const check $ bug_arg $ seed_arg $ executions_arg $ coverage_report_arg
      $ plateau_arg $ faults_arg $ fault_budget_arg $ reduce_arg $ clock_arg
      $ check_lin_arg)

(* --- explore (coverage, no bug expectation) ----------------------------- *)

let explore bug strategy seed executions steps custom workers coverage_report
    plateau plateau_family faults fault_budget reduce clock fuzz_energy
    fuzz_mutate_faults =
  match
    Result.bind (parse_strategy strategy) (fun s ->
        Result.bind (parse_reduce reduce) (fun r ->
            Result.map
              (fun pf -> (s, r, pf))
              (parse_plateau_family ~plateau plateau_family)))
  with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok (strategy, reduce, plateau_family) -> begin
    match Bug_catalog.find bug with
    | exception Invalid_argument msg ->
      prerr_endline msg;
      2
    | entry -> begin
      match
        Result.bind (fault_spec_of entry ~faults ~fault_budget) (fun spec ->
            Result.bind (clock_spec_of entry clock) (fun ck ->
                Result.map (fun h -> (spec, ck, h)) (harness_of entry ~custom)))
      with
      | Error msg ->
        prerr_endline msg;
        2
      | Ok (fault_spec, clock_spec, harness) ->
        let config =
          config_of ~workers ~coverage:true ?plateau ~plateau_family
            ~faults:fault_spec ~reduce ~clock:clock_spec ~fuzz_energy
            ~fuzz_mutate_faults entry ~strategy ~seed ~executions ~steps
            ~log:false
        in
        let stats = E.explore ~monitors:entry.Bug_catalog.monitors config harness in
        (match stats.E.coverage with
         | Some cov ->
           Format.printf "%a@." Psharp.Coverage.pp_table cov;
           (match coverage_report with
            | Some path ->
              let oc = open_out path in
              Fun.protect
                ~finally:(fun () -> close_out oc)
                (fun () -> output_string oc (Psharp.Coverage.to_json cov));
              Format.printf "coverage report written to %s@." path
            | None -> ())
         | None -> ());
        Format.printf "explored %d execution(s) in %.2fs (%d total steps%s%s)@."
          stats.E.executions stats.E.elapsed stats.E.total_steps
          (if stats.E.plateaued then ", coverage plateau" else "")
          (if stats.E.timed_out then ", stopped at the time budget" else "");
        0
    end
  end

let explore_cmd =
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Run the whole execution budget with coverage on, without \
          stopping at bugs, and report the coverage reached.")
    Term.(
      const explore $ bug_arg $ strategy_arg $ seed_arg $ executions_arg
      $ steps_arg $ custom_arg $ workers_arg $ coverage_report_arg
      $ plateau_arg $ plateau_family_arg $ faults_arg $ fault_budget_arg
      $ reduce_arg $ clock_arg $ fuzz_energy_arg $ fuzz_mutate_faults_arg)

(* --- scenario (list / describe / run) ------------------------------------ *)

module Scenario_catalog = Catalog.Scenario_catalog

let scenario_list () =
  Printf.printf "%-20s %-55s %s\n" "Scenario" "Summary" "Targets";
  List.iter
    (fun e ->
      Printf.printf "%-20s %-55s %s\n" e.Scenario_catalog.name
        e.Scenario_catalog.summary
        (String.concat "," e.Scenario_catalog.targets))
    Scenario_catalog.all;
  0

let scenario_describe name =
  match Scenario_catalog.find name with
  | exception Invalid_argument msg ->
    prerr_endline msg;
    2
  | e ->
    Printf.printf "%s — %s\n\n%stargets: %s\n" e.Scenario_catalog.name
      e.Scenario_catalog.summary e.Scenario_catalog.text
      (String.concat ", " e.Scenario_catalog.targets);
    0

(* Delegates to [hunt] with the scenario pinned; the target defaults to
   the entry's first (most characteristic) catalog bug. *)
let scenario_run name bug strategy seed executions steps trace_out log shrink
    workers faults fault_budget clock =
  match Scenario_catalog.find name with
  | exception Invalid_argument msg ->
    prerr_endline msg;
    2
  | e ->
    let bug =
      match bug with
      | Some b -> b
      | None -> List.hd e.Scenario_catalog.targets
    in
    hunt bug strategy seed executions steps false trace_out log shrink workers
      None None None faults fault_budget "none" clock "auto" None false false
      (Some name)

let scenario_pos_arg =
  let doc = "Scenario name (see `scenario list')." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SCENARIO" ~doc)

let scenario_bug_arg =
  let doc = "Target bug (defaults to the scenario's first target)." in
  Arg.(value & pos 1 (some string) None & info [] ~docv:"BUG" ~doc)

let scenario_cmd =
  let list_c =
    Cmd.v
      (Cmd.info "list" ~doc:"List the scenario catalog.")
      Term.(const scenario_list $ const ())
  in
  let describe_c =
    Cmd.v
      (Cmd.info "describe"
         ~doc:"Print a scenario's canonical text and target bugs.")
      Term.(const scenario_describe $ scenario_pos_arg)
  in
  let run_c =
    Cmd.v
      (Cmd.info "run"
         ~doc:
           "Hunt a target bug under a scenario (equivalent to `hunt BUG \
            --scenario SCENARIO').")
      Term.(
        const scenario_run $ scenario_pos_arg $ scenario_bug_arg $ strategy_arg
        $ seed_arg $ executions_arg $ steps_arg $ trace_out_arg $ log_arg
        $ shrink_arg $ workers_arg $ faults_arg $ fault_budget_arg $ clock_arg)
  in
  Cmd.group
    (Cmd.info "scenario" ~doc:"List, describe and run catalog scenarios.")
    [ list_c; describe_c; run_c ]

let () =
  let info =
    Cmd.info "psharp_test" ~version:"1.0"
      ~doc:
        "Systematic concurrency testing of the distributed storage case \
         studies (FAST 2016 reproduction)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            list_cmd;
            hunt_cmd;
            replay_cmd;
            survey_cmd;
            check_cmd;
            explore_cmd;
            scenario_cmd;
          ]))
